"""Placement policies: the per-join pullup rules of Sections 4.1–4.3.

A policy is the strategy-specific piece of the System R enumerator. It is
consulted twice: when a base scan is formed (how to order that table's
selections) and every time a join node is constructed (which filters to pull
up from the two inputs). Policies mutate freshly-cloned nodes, so shared
subplans in the DP table are never corrupted.

The public hooks (:meth:`PlacementPolicy.place_scan`,
:meth:`PlacementPolicy.on_join`) wrap the policy bodies in profiler phases
(``policy.<name>.place_scan`` / ``policy.<name>.on_join``) so hotspot
tables and Chrome traces cover every strategy uniformly; subclasses
override the underscored bodies (``_place_scan`` / ``_on_join``). When a
provenance ledger is attached, the bodies also record the decisions
themselves — rank orderings, hoists, rank-vs-join-rank comparisons — as
typed :mod:`repro.obs.provenance` events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import CostModel, PerInput
from repro.expr.predicates import Predicate
from repro.obs.provenance import NULL_LEDGER, skeleton_signature
from repro.obs.profile import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.plan.nodes import Join, PlanNode, Scan


def rank_sorted(predicates: list[Predicate]) -> list[Predicate]:
    """Ascending rank — the optimal execution order for selections
    (Section 4.1). Free predicates (rank −∞) come first."""
    return sorted(predicates, key=lambda predicate: predicate.rank)


@dataclass
class JoinContext:
    """What a policy sees when one join is constructed."""

    outer_rows: float
    inner_rows: float
    per_input: PerInput


class PlacementPolicy:
    """Default behaviour: classic pushdown with rank-ordered selections."""

    name = "base"

    def __init__(self) -> None:
        #: Per-planning decision counts (pullups performed/declined, …),
        #: harvested into :attr:`OptimizedPlan.notes` by the planner.
        self.counters: dict[str, int] = {}
        #: Decision-trace sink; the planner swaps in a live tracer.
        self.tracer = NULL_TRACER
        #: Phase-time sink; the planner swaps in a live profiler.
        self.profiler = NULL_PROFILER
        #: Placement-decision sink; the planner swaps in a live ledger.
        self.ledger = NULL_LEDGER
        self._scan_phase = f"policy.{self.name}.place_scan"
        self._join_phase = f"policy.{self.name}.on_join"

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- public hooks (profiled wrappers) --------------------------------

    def place_scan(
        self, scan: Scan, selections: list[Predicate], model: CostModel
    ) -> None:
        if self.profiler.enabled:
            with self.profiler.phase(self._scan_phase):
                self._place_scan(scan, selections, model)
        else:
            self._place_scan(scan, selections, model)

    def on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        """Mutate the join's (cloned) inputs; return True to mark the
        subplan unpruneable (used only by Predicate Migration)."""
        if self.profiler.enabled:
            with self.profiler.phase(self._join_phase):
                return self._on_join(join, model, ctx)
        return self._on_join(join, model, ctx)

    # -- policy bodies (override these) ----------------------------------

    def _place_scan(
        self, scan: Scan, selections: list[Predicate], model: CostModel
    ) -> None:
        scan.filters = rank_sorted(selections)
        if self.ledger.enabled and selections:
            self.ledger.record(
                "scan.rank_order",
                table=scan.table,
                order=[str(p) for p in scan.filters],
                ranks=[p.rank for p in scan.filters],
            )
            # Disjunctive conjuncts additionally record their intra-tree
            # short-circuit order (Kim/Ileri/Madden generalisation): the
            # tree's children were rank-ordered at analysis time and its
            # cost_per_tuple is the expected short-circuit cost. Only
            # emitted when a boolean tree is present, so conjunctive
            # workloads' provenance is byte-identical.
            for predicate in scan.filters:
                if predicate.is_compound:
                    self.count("disjunctions_ordered")
                    self.ledger.record(
                        "scan.disjunction_order",
                        table=scan.table,
                        predicate=str(predicate),
                        tree=str(predicate.tree),
                        expected_cost=predicate.cost_per_tuple,
                    )

    def _on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        return False

    # -- shared pull helpers ---------------------------------------------

    @staticmethod
    def _pull(
        join: Join,
        source: PlanNode,
        chosen: list[Predicate],
        model: CostModel,
    ) -> None:
        if not chosen:
            return
        for predicate in chosen:
            source.filters.remove(predicate)
        join.filters = rank_sorted(join.filters + chosen)
        # The source's filter list changed under it; drop any memoised
        # estimate so the join's estimate sees the post-pull input.
        model.forget(source)


class PushDownPolicy(PlacementPolicy):
    """PushDown+ (Section 4.1): never pull; only rank-order selections."""

    name = "pushdown"


class PullUpPolicy(PlacementPolicy):
    """PullUp (Section 4.2): every costly selection is pulled to the very
    top of each enumerated subplan."""

    name = "pullup"

    def _on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        for source in (join.outer, join.inner):
            expensive = [p for p in source.filters if p.is_expensive]
            if expensive and self.ledger.enabled:
                side = "outer" if source is join.outer else "inner"
                signature = skeleton_signature(join)
                for predicate in expensive:
                    self.ledger.record(
                        "pullup.hoist",
                        predicate=str(predicate),
                        predicate_rank=predicate.rank,
                        side=side,
                        join=str(join.primary),
                        join_signature=signature,
                        outer_rows=ctx.outer_rows,
                        inner_rows=ctx.inner_rows,
                    )
            self._pull(join, source, expensive, model)
            if expensive:
                self.count("pullups", len(expensive))
        return False


class PullRankPolicy(PlacementPolicy):
    """PullRank (Section 4.3): pull a filter above the new join exactly when
    its rank exceeds the join's rank for that input. Considers only the
    filters at the top of each input — one join at a time, no multi-join
    group pullups (the Figure 6 failure mode)."""

    name = "pullrank"

    #: When True, declining to pull an expensive predicate marks the subplan
    #: unpruneable — the System R modification Predicate Migration needs.
    mark_unpruneable = False

    def _on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        unpruneable = False
        for source, input_rank, input_selectivity, input_cost in (
            (
                join.outer,
                ctx.per_input.outer_rank,
                ctx.per_input.outer_selectivity,
                ctx.per_input.outer_cost,
            ),
            (
                join.inner,
                ctx.per_input.inner_rank,
                ctx.per_input.inner_selectivity,
                ctx.per_input.inner_cost,
            ),
        ):
            pulled = [p for p in source.filters if p.rank > input_rank]
            declined_expensive = [
                p
                for p in source.filters
                if p.is_expensive and p.rank <= input_rank
            ]
            if self.ledger.enabled and (pulled or declined_expensive):
                side = "outer" if source is join.outer else "inner"
                signature = skeleton_signature(join)
                for predicate, was_pulled in (
                    [(p, True) for p in pulled]
                    + [(p, False) for p in declined_expensive]
                ):
                    self.ledger.record(
                        "pullrank.compare",
                        predicate=str(predicate),
                        predicate_rank=predicate.rank,
                        join_rank=input_rank,
                        side=side,
                        join=str(join.primary),
                        join_signature=signature,
                        pulled=was_pulled,
                        input_selectivity=input_selectivity,
                        input_cost=input_cost,
                        outer_rows=ctx.outer_rows,
                        inner_rows=ctx.inner_rows,
                    )
            self._pull(join, source, pulled, model)
            if pulled:
                self.count("pullups", len(pulled))
            if declined_expensive:
                self.count("pullups_declined", len(declined_expensive))
                unpruneable = True
            if self.tracer.enabled:
                side = "outer" if source is join.outer else "inner"
                for predicate in pulled:
                    self.tracer.event(
                        "pullrank.pull",
                        predicate=str(predicate),
                        predicate_rank=predicate.rank,
                        join_rank=input_rank,
                        side=side,
                        join=str(join.primary),
                    )
                for predicate in declined_expensive:
                    self.tracer.event(
                        "pullrank.decline",
                        predicate=str(predicate),
                        predicate_rank=predicate.rank,
                        join_rank=input_rank,
                        side=side,
                        join=str(join.primary),
                    )
        return unpruneable and self.mark_unpruneable


class MigrationPhaseOnePolicy(PullRankPolicy):
    """PullRank with unpruneable marking: the enumeration phase of
    Predicate Migration (Section 4.4)."""

    name = "migration-enumeration"
    mark_unpruneable = True
