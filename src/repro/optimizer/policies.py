"""Placement policies: the per-join pullup rules of Sections 4.1–4.3.

A policy is the strategy-specific piece of the System R enumerator. It is
consulted twice: when a base scan is formed (how to order that table's
selections) and every time a join node is constructed (which filters to pull
up from the two inputs). Policies mutate freshly-cloned nodes, so shared
subplans in the DP table are never corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import CostModel, PerInput
from repro.expr.predicates import Predicate
from repro.obs.tracer import NULL_TRACER
from repro.plan.nodes import Join, PlanNode, Scan


def rank_sorted(predicates: list[Predicate]) -> list[Predicate]:
    """Ascending rank — the optimal execution order for selections
    (Section 4.1). Free predicates (rank −∞) come first."""
    return sorted(predicates, key=lambda predicate: predicate.rank)


@dataclass
class JoinContext:
    """What a policy sees when one join is constructed."""

    outer_rows: float
    inner_rows: float
    per_input: PerInput


class PlacementPolicy:
    """Default behaviour: classic pushdown with rank-ordered selections."""

    name = "base"

    def __init__(self) -> None:
        #: Per-planning decision counts (pullups performed/declined, …),
        #: harvested into :attr:`OptimizedPlan.notes` by the planner.
        self.counters: dict[str, int] = {}
        #: Decision-trace sink; the planner swaps in a live tracer.
        self.tracer = NULL_TRACER

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def place_scan(
        self, scan: Scan, selections: list[Predicate], model: CostModel
    ) -> None:
        scan.filters = rank_sorted(selections)

    def on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        """Mutate the join's (cloned) inputs; return True to mark the
        subplan unpruneable (used only by Predicate Migration)."""
        return False

    # -- shared pull helpers ---------------------------------------------

    @staticmethod
    def _pull(
        join: Join,
        source: PlanNode,
        chosen: list[Predicate],
        model: CostModel,
    ) -> None:
        if not chosen:
            return
        for predicate in chosen:
            source.filters.remove(predicate)
        join.filters = rank_sorted(join.filters + chosen)
        # The source's filter list changed under it; drop any memoised
        # estimate so the join's estimate sees the post-pull input.
        model.forget(source)


class PushDownPolicy(PlacementPolicy):
    """PushDown+ (Section 4.1): never pull; only rank-order selections."""

    name = "pushdown"


class PullUpPolicy(PlacementPolicy):
    """PullUp (Section 4.2): every costly selection is pulled to the very
    top of each enumerated subplan."""

    name = "pullup"

    def on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        for source in (join.outer, join.inner):
            expensive = [p for p in source.filters if p.is_expensive]
            self._pull(join, source, expensive, model)
            if expensive:
                self.count("pullups", len(expensive))
        return False


class PullRankPolicy(PlacementPolicy):
    """PullRank (Section 4.3): pull a filter above the new join exactly when
    its rank exceeds the join's rank for that input. Considers only the
    filters at the top of each input — one join at a time, no multi-join
    group pullups (the Figure 6 failure mode)."""

    name = "pullrank"

    #: When True, declining to pull an expensive predicate marks the subplan
    #: unpruneable — the System R modification Predicate Migration needs.
    mark_unpruneable = False

    def on_join(
        self, join: Join, model: CostModel, ctx: JoinContext
    ) -> bool:
        unpruneable = False
        for source, input_rank in (
            (join.outer, ctx.per_input.outer_rank),
            (join.inner, ctx.per_input.inner_rank),
        ):
            pulled = [p for p in source.filters if p.rank > input_rank]
            declined_expensive = [
                p
                for p in source.filters
                if p.is_expensive and p.rank <= input_rank
            ]
            self._pull(join, source, pulled, model)
            if pulled:
                self.count("pullups", len(pulled))
            if declined_expensive:
                self.count("pullups_declined", len(declined_expensive))
                unpruneable = True
            if self.tracer.enabled:
                side = "outer" if source is join.outer else "inner"
                for predicate in pulled:
                    self.tracer.event(
                        "pullrank.pull",
                        predicate=str(predicate),
                        predicate_rank=predicate.rank,
                        join_rank=input_rank,
                        side=side,
                        join=str(join.primary),
                    )
                for predicate in declined_expensive:
                    self.tracer.event(
                        "pullrank.decline",
                        predicate=str(predicate),
                        predicate_rank=predicate.rank,
                        join_rank=input_rank,
                        side=side,
                        join=str(join.primary),
                    )
        return unpruneable and self.mark_unpruneable


class MigrationPhaseOnePolicy(PullRankPolicy):
    """PullRank with unpruneable marking: the enumeration phase of
    Predicate Migration (Section 4.4)."""

    name = "migration-enumeration"
    mark_unpruneable = True
