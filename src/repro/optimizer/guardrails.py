"""Cost-model guardrails: repair hostile statistics before ranking.

Every placement strategy in this repository ranks predicates by
``(selectivity - 1) / cost`` and compares plan costs with ``<``. A single
``nan`` selectivity poisons both: ``nan`` ranks make sort orders
undefined (silently wrong plans), and ``nan`` costs make every
branch-and-bound comparison false. Catalog statistics for user-defined
functions are exactly the kind of input that lies in production — the
UDF author declared them — so the optimizer validates and *clamps* them
at the front door instead of trusting them.

Clamping is a repair, not a rejection: the query still plans, each
repaired field is recorded as a ``stats.clamp`` provenance event (and
counted in the plan's ``notes``), and the clamped value is the most
conservative in-range interpretation of the lie:

* selectivity ``nan`` → 0.5 (the registry's own default prior);
* selectivity below 0 → 0.0; above 1 → 1.0 (selection predicates are
  pass rates; fanout lives in per-input join selectivities, which are
  derived, not declared);
* cost ``nan`` or negative → 0.0 (a predicate that lies about cost is
  treated as free — it can then never displace honest placements);
* cost ``+inf`` → :data:`MAX_COST` (finite, so ranks stay ordered).

Sanitisation is idempotent and plan-fingerprint-neutral on sane inputs:
a query whose statistics are already finite and in range is untouched.
"""

from __future__ import annotations

import math

from repro.expr.predicates import Predicate
from repro.obs.provenance import NULL_LEDGER

#: Finite stand-in for an infinite declared cost. Large enough to sort
#: after every honest predicate, small enough that rank arithmetic
#: (divisions by cost) stays finite.
MAX_COST = 1e12

#: Replacement for a ``nan`` selectivity: the function registry's own
#: default prior for boolean UDFs.
DEFAULT_SELECTIVITY = 0.5


def _clamp_selectivity(value: float) -> float | None:
    """The repaired value, or ``None`` when no repair is needed."""
    if math.isnan(value):
        return DEFAULT_SELECTIVITY
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return None


def _clamp_cost(value: float) -> float | None:
    if math.isnan(value) or value < 0.0:
        return 0.0
    if math.isinf(value):
        return MAX_COST
    return None


def _fmt(value: float) -> str:
    """Deterministic, JSON-safe rendering of possibly non-finite floats."""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:g}"


def sanitize_predicate(predicate: Predicate, ledger=NULL_LEDGER) -> int:
    """Clamp one predicate's statistics in place; returns clamp count."""
    clamps = 0
    repaired_sel = _clamp_selectivity(predicate.selectivity)
    if repaired_sel is not None:
        if ledger.enabled:
            ledger.record(
                "stats.clamp",
                predicate=str(predicate),
                field="selectivity",
                old=_fmt(predicate.selectivity),
                new=_fmt(repaired_sel),
            )
        predicate.selectivity = repaired_sel
        clamps += 1
    repaired_cost = _clamp_cost(predicate.cost_per_tuple)
    if repaired_cost is not None:
        if ledger.enabled:
            ledger.record(
                "stats.clamp",
                predicate=str(predicate),
                field="cost_per_tuple",
                old=_fmt(predicate.cost_per_tuple),
                new=_fmt(repaired_cost),
            )
        predicate.cost_per_tuple = repaired_cost
        clamps += 1
    return clamps


def sanitize_query(query, ledger=NULL_LEDGER) -> int:
    """Clamp every predicate statistic a query carries, in place.

    Runs unconditionally at the top of ``optimize()`` — it is the
    guarantee that no ``nan`` rank ever reaches a placement decision,
    whichever strategy runs. Returns the number of clamped fields (0 on
    honest queries, which are left bit-identical).
    """
    return sum(
        sanitize_predicate(predicate, ledger=ledger)
        for predicate in query.predicates
    )
