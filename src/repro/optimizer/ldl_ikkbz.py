"""LDL over IK-KBZ: the [KZ88] pipeline the paper discusses in Section 3.1.

[KZ88] proposed running the LDL rewrite (expensive predicates as virtual
relations) through the polynomial-time IK-KBZ join-ordering algorithm
instead of System R's exponential DP. The combination inherits both
parents' limits, which the paper points out:

* IK-KBZ handles only *tree* (acyclic) query graphs of cheap equijoins, so
  an expensive primary join predicate is out of scope;
* left-deep linearisation forces the LDL over-eager pullup from inner
  inputs;
* the ASI cost function is a heuristic proxy — the final plan is re-costed
  with the real per-input model here, but the *ordering* decisions are
  IK-KBZ's.

Virtual predicate nodes attach to their relation with T = selectivity and
C = cost-per-tuple, which makes their ASI rank exactly the paper's
predicate rank.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER, skeleton_signature
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.ikkbz import IKKBZNode, ikkbz_linearize, sequence_cost
from repro.optimizer.joinutil import choose_primary, eligible_methods
from repro.optimizer.policies import rank_sorted
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Plan, Scan
from repro.plan.streams import spine_of


def ldl_ikkbz_plan(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    bushy: bool = False,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
) -> Plan:
    """Plan via the LDL rewrite linearised by IK-KBZ.

    Raises :class:`OptimizerError` when the query is outside IK-KBZ's
    scope (non-equijoin or expensive join predicates, cyclic join graph,
    disconnected graph). IK-KBZ is inherently left-deep; ``bushy`` is
    accepted for interface uniformity and ignored.
    """
    del bushy
    _validate(query)
    with tracer.span("linearize", roots=len(query.tables)), \
            profiler.phase("ldl_ikkbz.linearize"):
        order = _best_order(query, catalog, model)
    if notes is not None:
        # One full linearisation per candidate root; all but the winning
        # root's sequence are discarded on the ASI cost proxy.
        notes.update(
            subplans_enumerated=len(query.tables),
            subplans_pruned=len(query.tables) - 1,
            order=[step for step in order if not step.startswith("__pred")],
            virtual_predicates=sum(
                1 for step in order if step.startswith("__pred")
            ),
        )
    if tracer.enabled:
        tracer.event("ikkbz.order", order=list(order))
    return _build_plan(query, catalog, model, order, ledger)


def _validate(query: Query) -> None:
    for predicate in query.join_predicates():
        if predicate.is_expensive:
            raise OptimizerError(
                "ldl-ikkbz cannot handle expensive join predicates"
            )
        if not predicate.is_equijoin:
            raise OptimizerError(
                "ldl-ikkbz requires equijoin join predicates"
            )


def _graph(query: Query, model: CostModel):
    """Tree edges (most selective predicate per table pair) and leftovers."""
    edges: dict[frozenset[str], Predicate] = {}
    secondaries: list[Predicate] = []
    for predicate in query.join_predicates():
        pair = frozenset(predicate.tables)
        current = edges.get(pair)
        if current is None:
            edges[pair] = predicate
        else:
            chosen, other = sorted(
                (current, predicate),
                key=lambda p: model.join_selectivity(p),
            )
            edges[pair] = chosen
            secondaries.append(other)
    return edges, secondaries


def _best_order(
    query: Query, catalog: Catalog, model: CostModel
) -> list[str]:
    edges, _ = _graph(query, model)
    if len(edges) != len(query.tables) - 1:
        raise OptimizerError(
            "ldl-ikkbz requires a tree query graph "
            f"({len(query.tables)} tables need {len(query.tables) - 1} "
            f"distinct join edges, got {len(edges)})"
        )

    filtered_rows: dict[str, float] = {}
    scan_cost: dict[str, float] = {}
    for table in query.tables:
        entry = catalog.table(table)
        rows = float(entry.stats.cardinality)
        for predicate in query.selections_on(table):
            if not predicate.is_expensive:
                rows *= predicate.selectivity
        filtered_rows[table] = max(rows, 1e-9)
        scan_cost[table] = entry.pages * model.params.seq_weight

    adjacency: dict[str, list[str]] = {t: [] for t in query.tables}
    edge_selectivity: dict[tuple[str, str], float] = {}
    for pair, predicate in edges.items():
        left, right = sorted(pair)
        adjacency[left].append(right)
        adjacency[right].append(left)
        s = model.join_selectivity(predicate)
        edge_selectivity[(left, right)] = s
        edge_selectivity[(right, left)] = s

    virtual: list[tuple[str, str, Predicate]] = []
    for position, predicate in enumerate(query.predicates):
        if predicate.is_expensive and predicate.is_selection:
            name = f"__pred{position}"
            host = predicate.table()
            adjacency.setdefault(name, []).append(host)
            adjacency[host].append(name)
            virtual.append((name, host, predicate))

    cpu = model.params.cpu_per_tuple
    best_order: list[str] | None = None
    best_cost = float("inf")
    for root in query.tables:
        values: dict[str, IKKBZNode] = {}
        parents = _orient(root, adjacency)
        for node, parent in parents.items():
            if node.startswith("__pred"):
                predicate = next(p for n, _, p in virtual if n == node)
                values[node] = IKKBZNode(
                    node, predicate.selectivity, predicate.cost_per_tuple
                )
            elif parent is None:
                values[node] = IKKBZNode(
                    node, filtered_rows[node], scan_cost[node]
                )
            else:
                t = edge_selectivity[(parent, node)] * filtered_rows[node]
                # ASI join-cost proxy: CPU per produced tuple plus the
                # relation's own scan, amortised per prefix tuple.
                values[node] = IKKBZNode(node, t, max(cpu * t, 1e-9))
        order = ikkbz_linearize(values, adjacency, root)
        cost = sequence_cost([values[name] for name in order])
        if cost < best_cost:
            best_cost = cost
            best_order = order
    assert best_order is not None
    return best_order


def _orient(root: str, adjacency: dict[str, list[str]]) -> dict[str, str | None]:
    parents: dict[str, str | None] = {root: None}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in parents:
                parents[neighbour] = node
                frontier.append(neighbour)
    if len(parents) != len(adjacency):
        raise OptimizerError("ldl-ikkbz query graph is disconnected")
    return parents


def _build_plan(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    order: list[str],
    ledger=NULL_LEDGER,
) -> Plan:
    """Realise an IK-KBZ order as a left-deep plan with greedy methods."""
    _, extra_secondaries = _graph(query, model)
    virtual = {
        f"__pred{position}": predicate
        for position, predicate in enumerate(query.predicates)
        if predicate.is_expensive and predicate.is_selection
    }
    used: set[int] = set()

    def cheap_scan(table: str) -> Scan:
        cheap = [
            p for p in query.selections_on(table) if not p.is_expensive
        ]
        return Scan(filters=rank_sorted(cheap), table=table)

    root = None
    seen: set[str] = set()
    for step in order:
        if step in virtual:
            predicate = virtual[step]
            if root is None:
                raise OptimizerError("ldl-ikkbz order starts with a predicate")
            root.filters = rank_sorted(root.filters + [predicate])
            if ledger.enabled:
                ledger.record(
                    "ldl.virtual_join",
                    predicate=str(predicate),
                    tables=sorted(seen),
                    applied=len(
                        [p for p in root.filters if p.is_expensive]
                    ),
                    signature=skeleton_signature(root),
                )
            continue
        if root is None:
            root = cheap_scan(step)
            seen.add(step)
            continue
        seen.add(step)
        connecting = [
            p
            for p in query.join_predicates()
            if step in p.tables
            and p.tables <= seen
            and p.pred_id not in used
        ]
        primary, secondaries, cheap = choose_primary(connecting)
        used.add(primary.pred_id)
        used.update(p.pred_id for p in secondaries)
        root = Join(
            filters=rank_sorted(secondaries),
            outer=root,
            inner=cheap_scan(step),
            method=JoinMethod.HASH if cheap else JoinMethod.NESTED_LOOP,
            primary=primary,
        )
    assert root is not None

    if isinstance(root, Join):
        from repro.optimizer.exhaustive import _method_costs

        spine = spine_of(root)
        list(_method_costs(spine, catalog, model, "greedy"))
    estimate = model.estimate_plan(root)
    return Plan(root, estimate.cost, estimate.rows)
