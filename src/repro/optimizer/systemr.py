"""System R-style dynamic-programming join enumeration (left-deep).

This is the substrate every placement algorithm plugs into, as in Montage.
The enumerator keeps, per table subset: the cheapest subplan, the cheapest
subplan per interesting order, and — when the policy requests it — all
*unpruneable* subplans (those still holding an expensive predicate that was
not pulled up; Section 4.4 explains why Predicate Migration must retain
them). Cross products are considered only when no join predicate connects a
subset, per System R tradition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, Estimate
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.obs.profile import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.joinutil import (
    choose_primary,
    eligible_methods,
    index_access,
)
from repro.optimizer.policies import (
    JoinContext,
    PlacementPolicy,
    rank_sorted,
)
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Plan, PlanNode, Scan


def _shape(node: PlanNode):
    if isinstance(node, Scan):
        return node.table
    assert isinstance(node, Join)
    return (_shape(node.outer), _shape(node.inner))


def _skeleton_key(node: PlanNode) -> tuple:
    """Join-tree shape plus the top join's method — the identity that
    matters to Predicate Migration's post-processing (it re-places all
    movable predicates on the retained skeleton)."""
    top_method = node.method if isinstance(node, Join) else None
    return (_shape(node), top_method)


@dataclass
class Candidate:
    """One retained subplan for a table subset."""

    node: PlanNode
    estimate: Estimate
    unpruneable: bool = False

    @property
    def cost(self) -> float:
        return self.estimate.cost


@dataclass
class PlannerStats:
    """Instrumentation: how much work the enumeration did."""

    joins_built: int = 0
    candidates_kept: int = 0
    unpruneable_kept: int = 0
    base_candidates: int = 0
    subplans_pruned: int = 0

    @property
    def subplans_enumerated(self) -> int:
        """Every subplan constructed: base access paths plus joins."""
        return self.base_candidates + self.joins_built

    def as_notes(self) -> dict:
        """The decision counts every strategy reports in its notes."""
        return {
            "subplans_enumerated": self.subplans_enumerated,
            "subplans_pruned": self.subplans_pruned,
            "candidates_kept": self.candidates_kept,
            "unpruneable_kept": self.unpruneable_kept,
        }


class SystemRPlanner:
    """Left-deep DP enumerator parameterised by a placement policy."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel,
        policy: PlacementPolicy | None = None,
        methods: tuple[JoinMethod, ...] = tuple(JoinMethod),
        bushy: bool = False,
        tracer=NULL_TRACER,
        profiler=NULL_PROFILER,
    ) -> None:
        """``bushy=True`` additionally enumerates bushy join trees (both
        join inputs may be composites) — the System R modification the
        paper mentions as the fix for LDL's left-deep limitation.
        ``tracer`` receives per-subset enumeration events and the policy's
        per-join pullup verdicts; ``profiler`` accumulates wall-clock per
        DP level (``systemr.level_<k>``)."""
        self.catalog = catalog
        self.model = model
        self.policy = policy or PlacementPolicy()
        self.methods = methods
        self.bushy = bushy
        self.tracer = tracer
        self.profiler = profiler
        self.policy.tracer = tracer
        self.stats = PlannerStats()

    def notes(self) -> dict:
        """Decision counts for :attr:`OptimizedPlan.notes`: enumeration
        stats plus the policy's pullup verdict counters."""
        notes = self.stats.as_notes()
        for key, value in self.policy.counters.items():
            notes[key] = value
        return notes

    # -- public API --------------------------------------------------------

    def plan(self, query: Query) -> Plan:
        """The cheapest complete plan under this policy."""
        candidates = self.final_candidates(query)
        best = min(candidates, key=lambda candidate: candidate.cost)
        return Plan(
            root=best.node,
            estimated_cost=best.estimate.cost,
            estimated_rows=best.estimate.rows,
        )

    def final_candidates(self, query: Query) -> list[Candidate]:
        """All retained complete plans: cheapest, interesting orders, and
        unpruneable subplans (Predicate Migration post-processes these)."""
        self.stats = PlannerStats()
        table_list = sorted(query.tables)
        join_predicates = query.join_predicates()
        tracer = self.tracer

        dp: dict[frozenset[str], list[Candidate]] = {}
        with self.profiler.phase("systemr.level_1"):
            for table in table_list:
                base = self._base_candidates(query, table)
                self.stats.base_candidates += len(base)
                dp[frozenset({table})] = self._prune(base)

        for size in range(2, len(table_list) + 1):
            with self.profiler.phase(f"systemr.level_{size}"):
                for subset_tuple in itertools.combinations(table_list, size):
                    subset = frozenset(subset_tuple)
                    candidates = self._extend(
                        query, dp, subset, join_predicates
                    )
                    if not candidates:
                        candidates = self._extend(
                            query, dp, subset, join_predicates,
                            allow_cross=True,
                        )
                    if candidates:
                        kept = self._prune(candidates)
                        dp[subset] = kept
                        if tracer.enabled:
                            tracer.event(
                                "systemr.subset",
                                tables=sorted(subset),
                                enumerated=len(candidates),
                                kept=len(kept),
                                unpruneable=sum(
                                    1 for c in kept if c.unpruneable
                                ),
                            )

        final = dp.get(frozenset(table_list))
        if not final:
            raise OptimizerError(
                f"could not connect tables {table_list}; "
                "query graph may be malformed"
            )
        return final

    # -- enumeration internals -------------------------------------------------

    def _base_scan(self, query: Query, table: str) -> Scan:
        scan = Scan(filters=[], table=table)
        self.policy.place_scan(
            scan, list(query.selections_on(table)), self.model
        )
        return scan

    def _base_candidates(self, query: Query, table: str) -> list[Candidate]:
        """Access-path selection for one base relation.

        Besides the sequential scan, consider a B-tree index scan for each
        free (zero-cost) single-column range or equality filter over an
        indexed attribute; the chosen filter becomes the access path and
        leaves the filter list. Index scans also carry an interesting
        order, which the pruner retains for merge joins above.
        """
        seq_scan = self._base_scan(query, table)
        candidates = [Candidate(seq_scan, self.model.estimate_plan(seq_scan))]
        entry = self.catalog.table(table)
        for predicate in seq_scan.filters:
            access = index_access(entry, predicate)
            if access is None:
                continue
            attribute, low, high = access
            index_scan = Scan(
                filters=[p for p in seq_scan.filters if p is not predicate],
                table=table,
                index_attr=attribute,
                index_range=(low, high),
            )
            candidates.append(
                Candidate(index_scan, self.model.estimate_plan(index_scan))
            )
        return candidates

    def _extend(
        self,
        query: Query,
        dp: dict[frozenset[str], list[Candidate]],
        subset: frozenset[str],
        join_predicates: list[Predicate],
        allow_cross: bool = False,
    ) -> list[Candidate]:
        candidates: list[Candidate] = []
        # Sorted so enumeration order — and therefore which of several
        # cost-tied candidates survives pruning — does not depend on set
        # hash order (plan fingerprints must be stable across processes).
        for inner_table in sorted(subset):
            outer_set = subset - {inner_table}
            outer_candidates = dp.get(outer_set)
            if not outer_candidates:
                continue
            connecting = [
                predicate
                for predicate in join_predicates
                if inner_table in predicate.tables
                and predicate.tables <= subset
            ]
            if not connecting and not allow_cross:
                continue
            for outer_candidate in outer_candidates:
                candidates.extend(
                    self._build_joins(
                        query, outer_candidate, inner_table, connecting
                    )
                )
        if self.bushy:
            candidates.extend(
                self._extend_bushy(dp, subset, join_predicates, allow_cross)
            )
        return candidates

    def _extend_bushy(
        self,
        dp: dict[frozenset[str], list[Candidate]],
        subset: frozenset[str],
        join_predicates: list[Predicate],
        allow_cross: bool,
    ) -> list[Candidate]:
        """Bushy partitions: both sides composite (|inner side| >= 2; the
        singleton-inner case is the left-deep extension above)."""
        candidates: list[Candidate] = []
        members = sorted(subset)
        for mask in range(1, 1 << len(members)):
            inner_set = frozenset(
                member
                for position, member in enumerate(members)
                if mask & (1 << position)
            )
            if len(inner_set) < 2 or len(inner_set) >= len(subset):
                continue
            outer_set = subset - inner_set
            outer_candidates = dp.get(outer_set)
            inner_candidates = dp.get(inner_set)
            if not outer_candidates or not inner_candidates:
                continue
            connecting = [
                p
                for p in join_predicates
                if p.tables <= subset
                and p.tables & outer_set
                and p.tables & inner_set
            ]
            if not connecting and not allow_cross:
                continue
            primary, secondaries, cheap = choose_primary(connecting)
            methods = (
                [JoinMethod.HASH, JoinMethod.MERGE]
                if cheap
                else [JoinMethod.NESTED_LOOP]
            )
            for outer_candidate in outer_candidates:
                for inner_candidate in inner_candidates:
                    for method in methods:
                        if method not in self.methods:
                            continue
                        join = Join(
                            filters=rank_sorted(list(secondaries)),
                            outer=outer_candidate.node.clone(),
                            inner=inner_candidate.node.clone(),
                            method=method,
                            primary=primary,
                        )
                        ctx = JoinContext(
                            outer_rows=outer_candidate.estimate.rows,
                            inner_rows=inner_candidate.estimate.rows,
                            per_input=self.model.per_input(
                                join,
                                outer_candidate.estimate.rows,
                                inner_candidate.estimate.rows,
                            ),
                        )
                        unpruneable_here = self.policy.on_join(
                            join, self.model, ctx
                        )
                        estimate = self.model.estimate_plan(join)
                        self.stats.joins_built += 1
                        candidates.append(
                            Candidate(
                                node=join,
                                estimate=estimate,
                                unpruneable=(
                                    unpruneable_here
                                    or outer_candidate.unpruneable
                                    or inner_candidate.unpruneable
                                ),
                            )
                        )
        return candidates

    def _build_joins(
        self,
        query: Query,
        outer_candidate: Candidate,
        inner_table: str,
        connecting: list[Predicate],
    ) -> list[Candidate]:
        primary, secondaries, cheap = choose_primary(connecting)
        built: list[Candidate] = []
        for method in eligible_methods(
            self.catalog,
            primary,
            cheap,
            inner_table,
            self.methods,
            include_dominated=False,
        ):
            outer = outer_candidate.node.clone()
            inner = self._base_scan(query, inner_table)
            join = Join(
                filters=rank_sorted(secondaries),
                outer=outer,
                inner=inner,
                method=method,
                primary=primary,
            )
            inner_estimate = self.model.estimate_plan(inner)
            ctx = JoinContext(
                outer_rows=outer_candidate.estimate.rows,
                inner_rows=inner_estimate.rows,
                per_input=self.model.per_input(
                    join,
                    outer_candidate.estimate.rows,
                    inner_estimate.rows,
                ),
            )
            unpruneable_here = self.policy.on_join(join, self.model, ctx)
            estimate = self.model.estimate_plan(join)
            self.stats.joins_built += 1
            built.append(
                Candidate(
                    node=join,
                    estimate=estimate,
                    unpruneable=(
                        unpruneable_here or outer_candidate.unpruneable
                    ),
                )
            )
        return built

    def _prune(self, candidates: list[Candidate]) -> list[Candidate]:
        """Keep min-cost overall, min-cost per interesting order, and the
        unpruneable candidates.

        Unpruneable candidates are deduplicated to the cheapest per
        (spine table order, top join method): Predicate Migration re-places
        every movable predicate on the retained skeleton anyway, so two
        unpruneable subplans differing only in lower-join methods or in
        current predicate positions are interchangeable for its purposes.
        This keeps the paper's worst case ("exhaustively enumerates the
        space of join orders") while bounding the method-combination
        blowup.
        """
        kept: list[Candidate] = []
        best = min(candidates, key=lambda candidate: candidate.cost)
        kept.append(best)
        by_order: dict[object, Candidate] = {}
        for candidate in candidates:
            order = candidate.estimate.order
            if order is None:
                continue
            current = by_order.get(order)
            if current is None or candidate.cost < current.cost:
                by_order[order] = candidate
        for candidate in by_order.values():
            if candidate is not best:
                kept.append(candidate)
        by_skeleton: dict[object, Candidate] = {}
        for candidate in candidates:
            if not candidate.unpruneable:
                continue
            key = _skeleton_key(candidate.node)
            current = by_skeleton.get(key)
            if current is None or candidate.cost < current.cost:
                by_skeleton[key] = candidate
        for candidate in by_skeleton.values():
            if candidate not in kept:
                kept.append(candidate)
                self.stats.unpruneable_kept += 1
        self.stats.candidates_kept += len(kept)
        self.stats.subplans_pruned += len(candidates) - len(kept)
        return kept
