"""System R-style dynamic-programming join enumeration (left-deep).

This is the substrate every placement algorithm plugs into, as in Montage.
The enumerator keeps, per table subset: the cheapest subplan, the cheapest
subplan per interesting order, and — when the policy requests it — all
*unpruneable* subplans (those still holding an expensive predicate that was
not pulled up; Section 4.4 explains why Predicate Migration must retain
them). Cross products are considered only when no join predicate connects a
subset, per System R tradition.

Performance notes (the chosen plans are identical to the original
frozenset-based enumerator — plan fingerprints gate this in CI):

* DP states are keyed by integer bitmask over the sorted table list, and
  per-table join-edge lists carry precomputed predicate masks, so subset
  connectivity tests are single AND instructions.
* Join inputs are shared, not deep-cloned: the outer is a
  :meth:`~repro.plan.nodes.PlanNode.shallow_copy` (placement policies only
  mutate a node's own filter list) and the inner comes from a per-table
  scan template. Anything that rewrites plans after enumeration
  (Predicate Migration, the executor's debug validation) deep-clones
  first, so the DP table's shared subtrees are never corrupted.
* The cost model memoises estimates per node identity
  (:meth:`~repro.cost.model.CostModel.memo_enable`), so shared subtrees
  are costed once; hit/miss counts surface in :meth:`PlannerStats.as_notes`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, Estimate
from repro.errors import OptimizerError
from repro.expr.predicates import Predicate
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER, skeleton_signature
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.joinutil import (
    choose_primary,
    eligible_methods,
    index_access,
)
from repro.optimizer.policies import (
    JoinContext,
    PlacementPolicy,
    rank_sorted,
)
from repro.optimizer.query import Query
from repro.plan.nodes import Join, JoinMethod, Plan, PlanNode, Scan


def _shape(node: PlanNode):
    if isinstance(node, Scan):
        return node.table
    assert isinstance(node, Join)
    return (_shape(node.outer), _shape(node.inner))


def _skeleton_key(node: PlanNode) -> tuple:
    """Join-tree shape plus the top join's method — the identity that
    matters to Predicate Migration's post-processing (it re-places all
    movable predicates on the retained skeleton)."""
    top_method = node.method if isinstance(node, Join) else None
    return (_shape(node), top_method)


@dataclass
class Candidate:
    """One retained subplan for a table subset."""

    node: PlanNode
    estimate: Estimate
    unpruneable: bool = False

    @property
    def cost(self) -> float:
        return self.estimate.cost


@dataclass
class PlannerStats:
    """Instrumentation: how much work the enumeration did."""

    joins_built: int = 0
    candidates_kept: int = 0
    unpruneable_kept: int = 0
    base_candidates: int = 0
    subplans_pruned: int = 0
    cost_memo_hits: int = 0
    cost_memo_misses: int = 0

    @property
    def subplans_enumerated(self) -> int:
        """Every subplan constructed: base access paths plus joins."""
        return self.base_candidates + self.joins_built

    def as_notes(self) -> dict:
        """The decision counts every strategy reports in its notes."""
        return {
            "subplans_enumerated": self.subplans_enumerated,
            "subplans_pruned": self.subplans_pruned,
            "candidates_kept": self.candidates_kept,
            "unpruneable_kept": self.unpruneable_kept,
            "cost_memo_hits": self.cost_memo_hits,
            "cost_memo_misses": self.cost_memo_misses,
        }


class SystemRPlanner:
    """Left-deep DP enumerator parameterised by a placement policy."""

    def __init__(
        self,
        catalog: Catalog,
        model: CostModel,
        policy: PlacementPolicy | None = None,
        methods: tuple[JoinMethod, ...] = tuple(JoinMethod),
        bushy: bool = False,
        tracer=NULL_TRACER,
        profiler=NULL_PROFILER,
        ledger=NULL_LEDGER,
    ) -> None:
        """``bushy=True`` additionally enumerates bushy join trees (both
        join inputs may be composites) — the System R modification the
        paper mentions as the fix for LDL's left-deep limitation.
        ``tracer`` receives per-subset enumeration events and the policy's
        per-join pullup verdicts; ``profiler`` accumulates wall-clock per
        DP level (``systemr.level_<k>``); ``ledger`` records the placement
        decisions themselves (:mod:`repro.obs.provenance`)."""
        self.catalog = catalog
        self.model = model
        self.policy = policy or PlacementPolicy()
        self.methods = methods
        self.bushy = bushy
        self.tracer = tracer
        self.profiler = profiler
        self.ledger = ledger
        self.policy.tracer = tracer
        self.policy.profiler = profiler
        self.policy.ledger = ledger
        self.stats = PlannerStats()
        self._scan_templates: dict[str, tuple[Scan, Estimate]] = {}

    def notes(self) -> dict:
        """Decision counts for :attr:`OptimizedPlan.notes`: enumeration
        stats plus the policy's pullup verdict counters."""
        notes = self.stats.as_notes()
        for key, value in self.policy.counters.items():
            notes[key] = value
        return notes

    # -- public API --------------------------------------------------------

    def plan(self, query: Query) -> Plan:
        """The cheapest complete plan under this policy."""
        candidates = self.final_candidates(query)
        best = min(candidates, key=lambda candidate: candidate.cost)
        return Plan(
            root=best.node,
            estimated_cost=best.estimate.cost,
            estimated_rows=best.estimate.rows,
        )

    def final_candidates(self, query: Query) -> list[Candidate]:
        """All retained complete plans: cheapest, interesting orders, and
        unpruneable subplans (Predicate Migration post-processes these)."""
        self.stats = PlannerStats()
        self._scan_templates = {}
        model = self.model
        model.memo_enable()
        memo_hits_before = model.memo_hits
        memo_misses_before = model.memo_misses
        # Tables are indexed once per query (sorted for stable enumeration
        # order — plan fingerprints must not depend on set hash order);
        # subsets are bitmasks over that indexing from here on.
        table_list = sorted(query.tables)
        count = len(table_list)
        index_of = {table: index for index, table in enumerate(table_list)}
        join_predicates = query.join_predicates()
        pred_masks: list[tuple[int, Predicate]] = []
        edges: list[list[tuple[int, Predicate]]] = [[] for _ in table_list]
        for predicate in join_predicates:
            mask = 0
            for table in predicate.tables:
                mask |= 1 << index_of[table]
            pred_masks.append((mask, predicate))
            for index in range(count):
                if mask & (1 << index):
                    edges[index].append((mask, predicate))
        tracer = self.tracer

        dp: dict[int, list[Candidate]] = {}
        with self.profiler.phase("systemr.level_1"):
            for index, table in enumerate(table_list):
                base = self._base_candidates(query, table)
                self.stats.base_candidates += len(base)
                dp[1 << index] = self._prune(base)

        for size in range(2, count + 1):
            with self.profiler.phase(f"systemr.level_{size}"):
                for combo in itertools.combinations(range(count), size):
                    subset_mask = 0
                    for index in combo:
                        subset_mask |= 1 << index
                    candidates = self._extend(
                        query, dp, combo, subset_mask, edges, pred_masks,
                        table_list,
                    )
                    if not candidates:
                        candidates = self._extend(
                            query, dp, combo, subset_mask, edges, pred_masks,
                            table_list, allow_cross=True,
                        )
                    if candidates:
                        kept = self._prune(candidates)
                        dp[subset_mask] = kept
                        if tracer.enabled:
                            tracer.event(
                                "systemr.subset",
                                tables=[table_list[i] for i in combo],
                                enumerated=len(candidates),
                                kept=len(kept),
                                unpruneable=sum(
                                    1 for c in kept if c.unpruneable
                                ),
                            )

        final = dp.get((1 << count) - 1)
        self.stats.cost_memo_hits += model.memo_hits - memo_hits_before
        self.stats.cost_memo_misses += model.memo_misses - memo_misses_before
        if not final:
            raise OptimizerError(
                f"could not connect tables {table_list}; "
                "query graph may be malformed"
            )
        return final

    # -- enumeration internals -------------------------------------------------

    def _base_scan(self, query: Query, table: str) -> Scan:
        scan = Scan(filters=[], table=table)
        self.policy.place_scan(
            scan, list(query.selections_on(table)), self.model
        )
        return scan

    def _scan_template(self, query: Query, table: str) -> tuple[Scan, Estimate]:
        """The (immutable) sequential-scan template for one table, with
        its estimate. Join construction clones it per use; the policy's
        scan placement is deterministic, so one template stands for every
        fresh ``_base_scan`` the original enumerator would have built."""
        cached = self._scan_templates.get(table)
        if cached is None:
            scan = self._base_scan(query, table)
            cached = (scan, self.model.estimate_plan(scan))
            self._scan_templates[table] = cached
        return cached

    def _base_candidates(self, query: Query, table: str) -> list[Candidate]:
        """Access-path selection for one base relation.

        Besides the sequential scan, consider a B-tree index scan for each
        free (zero-cost) single-column range or equality filter over an
        indexed attribute; the chosen filter becomes the access path and
        leaves the filter list. Index scans also carry an interesting
        order, which the pruner retains for merge joins above.
        """
        seq_scan, seq_estimate = self._scan_template(query, table)
        candidates = [Candidate(seq_scan, seq_estimate)]
        entry = self.catalog.table(table)
        for predicate in seq_scan.filters:
            access = index_access(entry, predicate)
            if access is None:
                continue
            attribute, low, high = access
            index_scan = Scan(
                filters=[p for p in seq_scan.filters if p is not predicate],
                table=table,
                index_attr=attribute,
                index_range=(low, high),
            )
            candidates.append(
                Candidate(index_scan, self.model.estimate_plan(index_scan))
            )
        return candidates

    def _extend(
        self,
        query: Query,
        dp: dict[int, list[Candidate]],
        combo: tuple[int, ...],
        subset_mask: int,
        edges: list[list[tuple[int, Predicate]]],
        pred_masks: list[tuple[int, Predicate]],
        table_list: list[str],
        allow_cross: bool = False,
    ) -> list[Candidate]:
        candidates: list[Candidate] = []
        # ``combo`` is ascending over the sorted table indexing, so the
        # enumeration order — and therefore which of several cost-tied
        # candidates survives pruning — matches the original sorted-set
        # iteration exactly.
        for index in combo:
            inner_table = table_list[index]
            outer_candidates = dp.get(subset_mask & ~(1 << index))
            if not outer_candidates:
                continue
            connecting = [
                predicate
                for mask, predicate in edges[index]
                if mask & subset_mask == mask
            ]
            if not connecting and not allow_cross:
                continue
            for outer_candidate in outer_candidates:
                candidates.extend(
                    self._build_joins(
                        query, outer_candidate, inner_table, connecting
                    )
                )
        if self.bushy:
            candidates.extend(
                self._extend_bushy(
                    dp, combo, subset_mask, pred_masks, allow_cross
                )
            )
        return candidates

    def _extend_bushy(
        self,
        dp: dict[int, list[Candidate]],
        combo: tuple[int, ...],
        subset_mask: int,
        pred_masks: list[tuple[int, Predicate]],
        allow_cross: bool,
    ) -> list[Candidate]:
        """Bushy partitions: both sides composite (|inner side| >= 2; the
        singleton-inner case is the left-deep extension above)."""
        candidates: list[Candidate] = []
        model = self.model
        size = len(combo)
        for local_mask in range(1, 1 << size):
            inner_size = local_mask.bit_count()
            if inner_size < 2 or inner_size >= size:
                continue
            inner_mask = 0
            for position in range(size):
                if local_mask & (1 << position):
                    inner_mask |= 1 << combo[position]
            outer_mask = subset_mask & ~inner_mask
            outer_candidates = dp.get(outer_mask)
            inner_candidates = dp.get(inner_mask)
            if not outer_candidates or not inner_candidates:
                continue
            connecting = [
                predicate
                for mask, predicate in pred_masks
                if mask & subset_mask == mask
                and mask & outer_mask
                and mask & inner_mask
            ]
            if not connecting and not allow_cross:
                continue
            primary, secondaries, cheap = choose_primary(connecting)
            methods = (
                [JoinMethod.HASH, JoinMethod.MERGE]
                if cheap
                else [JoinMethod.NESTED_LOOP]
            )
            for outer_candidate in outer_candidates:
                for inner_candidate in inner_candidates:
                    for method in methods:
                        if method not in self.methods:
                            continue
                        outer = outer_candidate.node.shallow_copy()
                        model.seed(outer, outer_candidate.estimate)
                        inner = inner_candidate.node.shallow_copy()
                        model.seed(inner, inner_candidate.estimate)
                        join = Join(
                            filters=rank_sorted(list(secondaries)),
                            outer=outer,
                            inner=inner,
                            method=method,
                            primary=primary,
                        )
                        ctx = JoinContext(
                            outer_rows=outer_candidate.estimate.rows,
                            inner_rows=inner_candidate.estimate.rows,
                            per_input=model.per_input(
                                join,
                                outer_candidate.estimate.rows,
                                inner_candidate.estimate.rows,
                            ),
                        )
                        unpruneable_here = self.policy.on_join(
                            join, model, ctx
                        )
                        estimate = model.estimate_plan(join)
                        self.stats.joins_built += 1
                        candidates.append(
                            Candidate(
                                node=join,
                                estimate=estimate,
                                unpruneable=(
                                    unpruneable_here
                                    or outer_candidate.unpruneable
                                    or inner_candidate.unpruneable
                                ),
                            )
                        )
        return candidates

    def _build_joins(
        self,
        query: Query,
        outer_candidate: Candidate,
        inner_table: str,
        connecting: list[Predicate],
    ) -> list[Candidate]:
        primary, secondaries, cheap = choose_primary(connecting)
        model = self.model
        template, template_estimate = self._scan_template(query, inner_table)
        built: list[Candidate] = []
        for method in eligible_methods(
            self.catalog,
            primary,
            cheap,
            inner_table,
            self.methods,
            include_dominated=False,
        ):
            outer = outer_candidate.node.shallow_copy()
            model.seed(outer, outer_candidate.estimate)
            inner = template.clone()
            model.seed(inner, template_estimate)
            join = Join(
                filters=rank_sorted(secondaries),
                outer=outer,
                inner=inner,
                method=method,
                primary=primary,
            )
            ctx = JoinContext(
                outer_rows=outer_candidate.estimate.rows,
                inner_rows=template_estimate.rows,
                per_input=model.per_input(
                    join,
                    outer_candidate.estimate.rows,
                    template_estimate.rows,
                ),
            )
            unpruneable_here = self.policy.on_join(join, model, ctx)
            estimate = model.estimate_plan(join)
            self.stats.joins_built += 1
            built.append(
                Candidate(
                    node=join,
                    estimate=estimate,
                    unpruneable=(
                        unpruneable_here or outer_candidate.unpruneable
                    ),
                )
            )
        return built

    def _prune(self, candidates: list[Candidate]) -> list[Candidate]:
        """Keep min-cost overall, min-cost per interesting order, and the
        unpruneable candidates — decided in one pass over the
        enumeration-ordered candidate list (strictly-cheaper-wins, so the
        first of several cost-tied candidates survives, as before).

        Unpruneable candidates are deduplicated to the cheapest per
        (spine table order, top join method): Predicate Migration re-places
        every movable predicate on the retained skeleton anyway, so two
        unpruneable subplans differing only in lower-join methods or in
        current predicate positions are interchangeable for its purposes.
        This keeps the paper's worst case ("exhaustively enumerates the
        space of join orders") while bounding the method-combination
        blowup.
        """
        best: Candidate | None = None
        by_order: dict[object, Candidate] = {}
        by_skeleton: dict[object, Candidate] = {}
        for candidate in candidates:
            if best is None or candidate.cost < best.cost:
                best = candidate
            order = candidate.estimate.order
            if order is not None:
                current = by_order.get(order)
                if current is None or candidate.cost < current.cost:
                    by_order[order] = candidate
            if candidate.unpruneable:
                key = _skeleton_key(candidate.node)
                current = by_skeleton.get(key)
                if current is None or candidate.cost < current.cost:
                    by_skeleton[key] = candidate
        assert best is not None
        kept: list[Candidate] = [best]
        for candidate in by_order.values():
            if candidate is not best:
                kept.append(candidate)
        for candidate in by_skeleton.values():
            if candidate not in kept:
                kept.append(candidate)
                self.stats.unpruneable_kept += 1
                if self.ledger.enabled:
                    self.ledger.record(
                        "systemr.unpruneable",
                        signature=skeleton_signature(candidate.node),
                        cost=candidate.cost,
                        tables=sorted(candidate.node.tables()),
                    )
        self.stats.candidates_kept += len(kept)
        self.stats.subplans_pruned += len(candidates) - len(kept)
        return kept
