"""Predicate Migration (Section 4.4): series–parallel placement.

Given a plan with a fixed join order, Predicate Migration computes the
optimal interleaving of predicates and joins along each stream. The key
insight beyond PullRank: when two adjacent stream elements are *out of rank
order* (the upper one's rank is below the lower's), they must be treated as
one group whose rank composes as

    rank(J1 J2) = (sel(J1)·sel(J2) − 1) / (cost(J1) + sel(J1)·cost(J2)),

and predicates are pulled above or pushed below the *group* — the
multi-join pullup PullRank cannot do. This is the Monma–Sidney
series–parallel algorithm using parallel chains [MS79].

Two practical points the implementation handles, both from the paper:

* The chain a predicate may climb contains not only the joins but also the
  *other* placed predicates of lower rank — a selection already pulled
  above a join filters the stream and can make crossing the pair
  profitable when crossing the join alone is not. We therefore rebuild
  each predicate's chain from the current placement of everything else and
  iterate to a fixpoint ("repeatedly applies ... until no progress is
  made").
* Per-input join selectivities and differential costs depend on the
  current stream cardinalities ``{R}``/``{S}``, which depend on placement
  (Section 5.2's "on the fly" estimates) — another reason for the
  fixpoint iteration. A selection on the *inner* table of its entry join
  crosses that join on the join's inner per-input quantities and rides the
  combined stream above it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.model import CostModel
from repro.errors import PlanError
from repro.expr.predicates import Predicate, rank
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import NULL_TRACER
from repro.plan.nodes import Plan, PlanNode
from repro.plan.streams import Spine, movable_predicates, spine_of

#: Safety bound on fixpoint iterations (each pass is monotone in practice;
#: the bound only guards against estimate oscillation).
MAX_ITERATIONS = 16


@dataclass(frozen=True)
class Module:
    """A group of adjacent stream elements treated as one operator."""

    selectivity: float
    cost: float
    start: int
    end: int

    @property
    def rank(self) -> float:
        return rank(self.selectivity, self.cost)

    def merge(self, upper: "Module") -> "Module":
        """Series composition: this module followed by ``upper``."""
        return Module(
            selectivity=self.selectivity * upper.selectivity,
            cost=self.cost + self.selectivity * upper.cost,
            start=self.start,
            end=upper.end,
        )


def normalize_modules(stream_items: list[Module]) -> list[Module]:
    """Merge adjacent modules while ranks decrease, yielding a chain of
    non-decreasing rank — the parallel-chains normal form."""
    modules: list[Module] = []
    for module in stream_items:
        modules.append(module)
        while len(modules) >= 2 and modules[-1].rank < modules[-2].rank:
            upper = modules.pop()
            lower = modules.pop()
            modules.append(lower.merge(upper))
    return modules


@dataclass(frozen=True)
class ChainItem:
    """One element of a predicate's climbable chain.

    ``slot_after`` is the spine slot the predicate occupies once it has
    climbed past this element: ``position + 1`` for the join at spine
    position ``position``; the owning slot itself for another predicate
    (climbing past a same-slot, lower-rank predicate does not cross a
    join).
    """

    module: Module
    slot_after: int


def climb_chain(
    predicate_rank: float, items: list[ChainItem], entry_slot: int
) -> int:
    """Best slot for a predicate with the given chain above its entry.

    Normalises the chain into non-decreasing-rank groups, then climbs past
    every group whose rank is below the predicate's own.
    """
    stack: list[ChainItem] = []
    for item in items:
        stack.append(item)
        while (
            len(stack) >= 2
            and stack[-1].module.rank < stack[-2].module.rank
        ):
            upper = stack.pop()
            lower = stack.pop()
            stack.append(
                ChainItem(lower.module.merge(upper.module), upper.slot_after)
            )
    slot = entry_slot
    for item in stack:
        if predicate_rank > item.module.rank:
            slot = max(slot, item.slot_after)
        else:
            break
    return slot


def optimal_slot(
    predicate_rank: float, joins: list[Module], entry_slot: int
) -> int:
    """Best slot against a pure join chain (``joins[i]`` at position ``i``).

    The simple form used when no other movable predicates interfere;
    :func:`migrate_node` builds richer chains via :func:`climb_chain`.
    """
    items = [
        ChainItem(module, module.end + 1) for module in joins[entry_slot:]
    ]
    return climb_chain(predicate_rank, items, entry_slot)


def spine_join_modules(
    spine: Spine, model: CostModel
) -> tuple[list[Module], list[Module]]:
    """Per-join (outer-stream, inner-stream) modules, computed with the
    *current* placement's stream cardinalities."""
    leaf_estimate = model.estimate_plan(spine.leaf)
    stream_rows = leaf_estimate.rows
    outer_modules: list[Module] = []
    inner_modules: list[Module] = []
    for spine_join in spine.joins:
        join = spine_join.join
        inner_estimate = model.estimate_plan(join.inner)
        per_input = model.per_input(join, stream_rows, inner_estimate.rows)
        position = spine_join.position
        outer_modules.append(
            Module(
                selectivity=per_input.outer_selectivity,
                cost=per_input.outer_cost,
                start=position,
                end=position,
            )
        )
        inner_modules.append(
            Module(
                selectivity=per_input.inner_selectivity,
                cost=per_input.inner_cost,
                start=position,
                end=position,
            )
        )
        stream_rows *= per_input.outer_selectivity
        for predicate in join.filters:
            stream_rows *= predicate.selectivity
    return outer_modules, inner_modules


@dataclass(frozen=True)
class _PredicateFacts:
    """Placement-independent facts about one movable predicate, computed
    once per :func:`migrate_node` call (the spine's structure is fixed, so
    entry slots, ranks, and stream membership never change across rounds).

    ``always_on_stream`` captures :ref:`the one exception <stream>`: an
    inner-table selection is part of the combined stream only above its
    entry slot (at the entry it sits on its own relation's scan, inside
    the entry join's module).
    """

    entry: int
    inner_entry: bool
    always_on_stream: bool
    rank: float
    module: Module


def _predicate_facts(spine: Spine, predicate: Predicate) -> _PredicateFacts:
    entry = spine.entry_slot(predicate)
    on_leaf = predicate.tables <= spine.leaf.tables()
    return _PredicateFacts(
        entry=entry,
        inner_entry=(
            predicate.is_selection
            and not on_leaf
            and entry < len(spine.joins)
        ),
        always_on_stream=not predicate.is_selection or on_leaf,
        rank=predicate.rank,
        module=Module(predicate.selectivity, predicate.cost_per_tuple, -1, -1),
    )


def _chain_for(
    spine: Spine,
    predicate: Predicate,
    outer_modules: list[Module],
    inner_modules: list[Module],
    current_slots: dict[Predicate, int],
    facts: dict[int, _PredicateFacts],
) -> list[ChainItem]:
    """The ordered chain of elements ``predicate`` could climb past."""
    own = facts[id(predicate)]
    entry = own.entry

    # Key: (slot index, 0=predicate/1=join, rank) for stable stream order —
    # predicates execute within a slot, the join at position i moves the
    # stream from slot i to slot i + 1 afterwards.
    keyed: list[tuple[tuple, ChainItem]] = []
    for position in range(entry, len(spine.joins)):
        module = (
            inner_modules[position]
            if own.inner_entry and position == entry
            else outer_modules[position]
        )
        keyed.append(
            ((position, 1, 0.0), ChainItem(module, position + 1))
        )
    for other, slot in current_slots.items():
        if other is predicate:
            continue
        theirs = facts[id(other)]
        if theirs.rank > own.rank:
            continue
        if slot <= entry:
            continue  # at or below this predicate's entry: always earlier
        if not (theirs.always_on_stream or slot > theirs.entry):
            continue
        keyed.append(((slot, 0, theirs.rank), ChainItem(theirs.module, slot)))
    keyed.sort(key=lambda pair: pair[0])
    return [item for _, item in keyed]


def _apply_round(
    current_slots: dict[Predicate, int],
    placements: dict[Predicate, int],
    node_for,
    by_rank: list[Predicate],
    placed_ids: set[int],
) -> list[PlanNode]:
    """One fixpoint round's placement rewrite.

    Semantically identical to :meth:`Spine.apply_placement` — same final
    filter lists, same touched set — but resolves owners and targets
    through the precomputed ``node_for`` instead of walking the tree and
    re-deriving entry slots every round. ``by_rank`` is the movable set
    pre-sorted by rank (ranks are static), matching apply_placement's
    global arrival order.
    """
    affected: dict[int, PlanNode] = {}
    for predicate, slot in current_slots.items():
        node = node_for(predicate, slot)
        affected.setdefault(id(node), node)
    arrivals: dict[int, list[Predicate]] = {}
    for predicate in by_rank:
        node = node_for(predicate, placements[predicate])
        affected.setdefault(id(node), node)
        arrivals.setdefault(id(node), []).append(predicate)
    touched: list[PlanNode] = []
    for node_id, node in affected.items():
        final = [
            predicate
            for predicate in node.filters
            if id(predicate) not in placed_ids
        ]
        final.extend(arrivals.get(node_id, ()))
        if len(final) != len(node.filters) or any(
            new is not old for new, old in zip(final, node.filters)
        ):
            node.filters = final
            touched.append(node)
    return touched


def migrate_node(
    root: PlanNode,
    model: CostModel,
    tracer=NULL_TRACER,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
    candidate: int = 0,
) -> tuple[int, int]:
    """Optimally re-place all movable predicates of ``root`` in place.

    Returns ``(fixpoint iterations, predicate moves)`` — the decision
    counts surfaced in the migration strategy's notes. ``ledger`` receives
    ``migration.pass``/``migration.move`` provenance events, tagged with
    ``candidate`` (the retained-skeleton index being migrated) so
    ``repro why`` can single out the winning candidate's history.
    """
    spine = spine_of(root)
    movable = movable_predicates(spine)
    facts = {
        id(predicate): _predicate_facts(spine, predicate)
        for predicate in movable
    }
    joins = [spine_join.join for spine_join in spine.joins]
    scan_node = {
        id(predicate): spine.scan_of(predicate)
        for predicate in movable
        if predicate.is_selection
    }

    def node_for(predicate: Predicate, slot: int) -> PlanNode:
        """The node realising ``slot`` for this predicate — the relation's
        scan at a selection's entry slot, join ``slot - 1`` above it."""
        if slot == facts[id(predicate)].entry and predicate.is_selection:
            return scan_node[id(predicate)]
        return joins[slot - 1]

    placed_ids = {id(predicate) for predicate in movable}
    by_rank = sorted(movable, key=lambda p: facts[id(p)].rank)
    current_slots = {
        predicate: _current_slot(spine, predicate, facts[id(predicate)].entry)
        for predicate in movable
    }
    if ledger.enabled:
        stream = sorted(spine.leaf.tables()) + [
            table
            for spine_join in spine.joins
            for table in sorted(spine_join.join.inner.tables())
        ]
    previous: dict[Predicate, int] | None = None
    iterations = 0
    moves = 0
    for _ in range(MAX_ITERATIONS):
        iterations += 1
        with profiler.phase("migration.round"):
            outer_modules, inner_modules = spine_join_modules(spine, model)
            placements: dict[Predicate, int] = {}
            for predicate in movable:
                own = facts[id(predicate)]
                chain = _chain_for(
                    spine, predicate, outer_modules, inner_modules,
                    current_slots, facts,
                )
                placements[predicate] = climb_chain(
                    own.rank, chain, own.entry
                )
            changed = sum(
                1
                for predicate, slot in placements.items()
                if current_slots.get(predicate) != slot
            )
            moves += changed
            if tracer.enabled:
                tracer.event(
                    "migration.fixpoint",
                    iteration=iterations,
                    moves=changed,
                    placements={
                        str(predicate): slot
                        for predicate, slot in placements.items()
                    },
                )
            if ledger.enabled:
                ledger.record(
                    "migration.pass",
                    candidate=candidate,
                    round=iterations,
                    stream=stream,
                    moves=changed,
                    placements={
                        str(predicate): slot
                        for predicate, slot in placements.items()
                    },
                )
                for predicate, slot in placements.items():
                    before = current_slots.get(predicate)
                    if before != slot:
                        ledger.record(
                            "migration.move",
                            candidate=candidate,
                            round=iterations,
                            predicate=str(predicate),
                            from_slot=before,
                            to_slot=slot,
                            stream=stream,
                        )
            if placements == previous:
                break
            touched = _apply_round(
                current_slots, placements, node_for, by_rank, placed_ids
            )
            # Dirty-stream worklist: only streams whose nodes were
            # reordered this round are re-estimated next round — the
            # memoised scan estimates of untouched streams stay valid.
            for node in touched:
                model.forget(node)
            current_slots = placements
            previous = placements
            if not touched:
                # The target placement was already realised bit-for-bit,
                # so every stream is clean: the next round would see the
                # exact same estimates and recompute the exact same
                # placements. Converged.
                break
    return iterations, moves


def _current_slot(spine: Spine, predicate: Predicate, entry: int) -> int:
    """Slot of a predicate's current position in the tree."""
    owner = spine.top.find_filter(predicate)
    for spine_join in spine.joins:
        if owner is spine_join.join:
            return spine_join.slot
        if owner is spine_join.join.inner:
            return entry
    return entry


def migrate_plan(
    plan: Plan,
    model: CostModel,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
    candidate: int = 0,
) -> Plan:
    """Migrate a (cloned) plan and return it with refreshed estimates.

    Left-deep plans use the spine algorithm; bushy plans fall back to the
    paper's per-path formulation (:func:`migrate_bushy_node`). When a
    ``notes`` dict is supplied, fixpoint iteration and predicate-move
    counts are accumulated into it.
    """
    from repro.plan.nodes import Join, Scan

    migrated = plan.clone()
    # Estimates are memoised per node identity across fixpoint rounds;
    # apply_placement reports which nodes were reordered and only those
    # are forgotten (dirty streams). The clone above guarantees fresh
    # node identities, so stale entries from enumeration cannot collide.
    model.memo_enable()
    left_deep = all(
        isinstance(node.inner, Scan)
        for node in migrated.root.walk()
        if isinstance(node, Join)
    )
    if left_deep:
        iterations, moves = migrate_node(
            migrated.root, model, tracer=tracer, profiler=profiler,
            ledger=ledger, candidate=candidate,
        )
    else:
        iterations, moves = migrate_bushy_node(
            migrated.root, model, tracer=tracer, profiler=profiler,
            ledger=ledger, candidate=candidate,
        )
    if notes is not None:
        notes["plans_migrated"] = notes.get("plans_migrated", 0) + 1
        notes["fixpoint_iterations"] = (
            notes.get("fixpoint_iterations", 0) + iterations
        )
        notes["predicate_moves"] = notes.get("predicate_moves", 0) + moves
    estimate = model.estimate_plan(migrated.root)
    migrated.estimated_cost = estimate.cost
    migrated.estimated_rows = estimate.rows
    return migrated


# -- bushy trees: the paper's per-path formulation ---------------------------


def _path_modules(path, model: CostModel) -> list[Module]:
    """Per-step (selectivity, differential cost) modules along one path,
    using each join's per-input quantities for the side the path ascends
    from, with current-placement stream estimates."""
    stream_rows = model.estimate_plan(path.leaf).rows
    modules: list[Module] = []
    for step in path.steps:
        join = step.join
        if step.from_outer:
            other_rows = model.estimate_plan(join.inner).rows
            per_input = model.per_input(join, stream_rows, other_rows)
            selectivity = per_input.outer_selectivity
            cost = per_input.outer_cost
        else:
            other_rows = model.estimate_plan(join.outer).rows
            per_input = model.per_input(join, other_rows, stream_rows)
            selectivity = per_input.inner_selectivity
            cost = per_input.inner_cost
        modules.append(
            Module(selectivity, cost, step.position, step.position)
        )
        stream_rows *= selectivity
        for predicate in join.filters:
            stream_rows *= predicate.selectivity
    return modules


def migrate_bushy_node(
    root: PlanNode,
    model: CostModel,
    tracer=NULL_TRACER,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
    candidate: int = 0,
) -> tuple[int, int]:
    """Predicate Migration for arbitrary trees: apply the series–parallel
    placement to each root-to-leaf path until no progress is made.

    Returns ``(fixpoint iterations, predicate moves)``.
    """
    from repro.plan.paths import current_slot_on_path, root_paths

    iterations = 0
    total_moves = 0
    for _ in range(MAX_ITERATIONS):
        iterations += 1
        round_phase = profiler.phase("migration.round")
        round_phase.__enter__()
        changed = False
        for path in root_paths(root):
            path_nodes = path.nodes()
            movable = [
                predicate
                for node in path_nodes
                for predicate in node.filters
            ]
            if not movable:
                continue
            modules = _path_modules(path, model)
            current = {
                predicate: current_slot_on_path(path, root, predicate)
                for predicate in movable
            }
            for predicate in movable:
                entry = path.entry_slot(predicate)
                items: list[tuple[tuple, ChainItem]] = []
                for position in range(entry, len(path.steps)):
                    items.append((
                        (position, 1, 0.0),
                        ChainItem(modules[position], position + 1),
                    ))
                for other in movable:
                    if other is predicate or other.rank > predicate.rank:
                        continue
                    slot = current.get(other)
                    if slot is None or slot <= entry:
                        continue
                    items.append((
                        (slot, 0, other.rank),
                        ChainItem(
                            Module(
                                other.selectivity,
                                other.cost_per_tuple,
                                -1,
                                -1,
                            ),
                            slot,
                        ),
                    ))
                items.sort(key=lambda pair: pair[0])
                target = climb_chain(
                    predicate.rank,
                    [item for _, item in items],
                    entry,
                )
                if target == current.get(predicate):
                    continue
                owner = next(
                    node for node in root.walk()
                    if predicate in node.filters
                )
                destination = path.node_at_slot(root, predicate, target)
                if destination is owner:
                    continue
                owner.filters.remove(predicate)
                destination.filters = sorted(
                    destination.filters + [predicate],
                    key=lambda p: p.rank,
                )
                # Bushy paths share composite subtrees, so a move can
                # invalidate estimates anywhere; forget conservatively.
                for node in root.walk():
                    model.forget(node)
                if ledger.enabled:
                    ledger.record(
                        "migration.move",
                        candidate=candidate,
                        round=iterations,
                        predicate=str(predicate),
                        from_slot=current.get(predicate),
                        to_slot=target,
                        stream=sorted(path.leaf.tables()),
                    )
                current[predicate] = target
                changed = True
                total_moves += 1
                if tracer.enabled:
                    tracer.event(
                        "migration.path_move",
                        predicate=str(predicate),
                        slot=target,
                        iteration=iterations,
                    )
        round_phase.__exit__(None, None, None)
        if ledger.enabled:
            ledger.record(
                "migration.pass",
                candidate=candidate,
                round=iterations,
                stream=sorted(root.tables()),
                moves=total_moves,
                placements={},
            )
        if not changed:
            break
    return iterations, total_moves


def group_rank(
    selectivities: list[float], costs: list[float]
) -> float:
    """The paper's displayed formula for the rank of a join group, exposed
    for tests: rank(J1..Jk) with series composition."""
    if not selectivities or len(selectivities) != len(costs):
        raise PlanError("need matching non-empty selectivity/cost lists")
    module = Module(selectivities[0], costs[0], 0, 0)
    for position in range(1, len(selectivities)):
        module = module.merge(
            Module(selectivities[position], costs[position], position, position)
        )
    return module.rank


def is_rank_ordered(values: list[float]) -> bool:
    """True when a stream's ranks are non-decreasing (no groups needed)."""
    return all(
        earlier <= later or math.isclose(earlier, later)
        for earlier, later in zip(values, values[1:])
    )
