"""The optimizer's input: tables plus analyzed predicates."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.expr.expressions import Const, Expr, QualifiedColumn, conjuncts
from repro.expr.predicates import Predicate, analyze_conjunct


def true_predicate() -> Predicate:
    """A trivially-true primary for cross-product joins."""
    return Predicate(
        expr=Const(True),
        tables=frozenset(),
        selectivity=1.0,
        cost_per_tuple=0.0,
    )


@dataclass
class Query:
    """A conjunctive select-project-join query over base tables."""

    tables: list[str]
    predicates: list[Predicate]
    select: list[QualifiedColumn] | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.tables:
            raise OptimizerError("query needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise OptimizerError(f"duplicate tables in query: {self.tables}")
        table_set = frozenset(self.tables)
        for predicate in self.predicates:
            if not predicate.tables <= table_set:
                raise OptimizerError(
                    f"predicate {predicate} references tables outside the "
                    f"query: {set(predicate.tables) - table_set}"
                )

    @classmethod
    def from_where(
        cls,
        catalog: Catalog,
        tables: list[str],
        where: Expr | None,
        select: list[QualifiedColumn] | None = None,
        name: str = "",
    ) -> "Query":
        """Split a WHERE expression into analyzed conjuncts."""
        predicates = [
            analyze_conjunct(catalog, conjunct)
            for conjunct in conjuncts(where)
        ]
        return cls(
            tables=list(tables),
            predicates=predicates,
            select=select,
            name=name,
        )

    # -- classification helpers -------------------------------------------

    def selections(self) -> list[Predicate]:
        return [p for p in self.predicates if p.is_selection]

    def selections_on(self, table: str) -> list[Predicate]:
        return [
            p
            for p in self.predicates
            if p.is_selection and p.tables == frozenset({table})
        ]

    def join_predicates(self) -> list[Predicate]:
        return [p for p in self.predicates if p.is_join]

    def expensive_predicates(self) -> list[Predicate]:
        return [p for p in self.predicates if p.is_expensive]

    def has_expensive_predicates(self) -> bool:
        return any(p.is_expensive for p in self.predicates)
