"""Shared join-construction rules used by every enumeration strategy."""

from __future__ import annotations

from repro.catalog.catalog import Catalog, TableEntry
from repro.expr.expressions import Column, Comparison, Const
from repro.expr.predicates import Predicate
from repro.optimizer.query import true_predicate
from repro.plan.nodes import JoinMethod


def index_access(
    entry: TableEntry, predicate: Predicate
) -> tuple[str, int, int] | None:
    """Decode a filter into an index access path, when possible.

    Returns ``(attribute, low, high)`` — an inclusive B-tree range that is
    exactly equivalent to ``predicate`` — for free single-column integer
    comparisons over an indexed attribute; ``None`` otherwise.
    """
    if predicate.is_expensive or not predicate.is_selection:
        return None
    expr = predicate.expr
    if not isinstance(expr, Comparison):
        return None
    column, constant, op = None, None, expr.op
    if isinstance(expr.left, Column) and isinstance(expr.right, Const):
        column, constant = expr.left, expr.right
    elif isinstance(expr.left, Const) and isinstance(expr.right, Column):
        column, constant = expr.right, expr.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if column is None or not isinstance(constant.value, int):
        return None
    if op not in ("=", "<", "<=", ">", ">="):
        return None
    if not entry.has_index(column.attribute):
        return None
    stats = entry.stats.attribute(column.attribute)
    value = constant.value
    if op == "=":
        return (column.attribute, value, value)
    if op == "<":
        return (column.attribute, stats.low, value - 1)
    if op == "<=":
        return (column.attribute, stats.low, value)
    if op == ">":
        return (column.attribute, value + 1, stats.high)
    return (column.attribute, value, stats.high)


def choose_primary(
    connecting: list[Predicate],
) -> tuple[Predicate, list[Predicate], bool]:
    """Pick the primary join predicate among the predicates connecting a new
    inner table. Returns ``(primary, secondaries, primary_is_cheap_equijoin)``.

    Preference order: the most selective cheap equijoin (it enables merge,
    hash, and index joins); otherwise the minimal-rank connecting predicate
    (footnote 1 of the paper) for a plain nested loop — this is how an
    *expensive primary join predicate* arises; otherwise a trivially-true
    predicate (cross product).
    """
    cheap_equijoins = [
        p for p in connecting if p.is_equijoin and not p.is_expensive
    ]
    if cheap_equijoins:
        primary = min(cheap_equijoins, key=lambda p: p.selectivity)
        cheap = True
    elif connecting:
        primary = min(connecting, key=lambda p: p.rank)
        cheap = False
    else:
        primary = true_predicate()
        cheap = False
    secondaries = [p for p in connecting if p is not primary]
    return primary, secondaries, cheap


def eligible_methods(
    catalog: Catalog,
    primary: Predicate,
    cheap_equijoin: bool,
    inner_table: str,
    allowed: tuple[JoinMethod, ...] = tuple(JoinMethod),
    include_dominated: bool = True,
) -> list[JoinMethod]:
    """Join methods valid for one (primary predicate, inner table) pair.

    With ``include_dominated=False``, plain nested loop is skipped when a
    cheap equijoin primary exists: under the linear cost model its cost
    (full inner rescans) strictly dominates hash join's and it contributes
    no interesting order, so enumerating it only burns planning time.
    """
    if not cheap_equijoin:
        return [JoinMethod.NESTED_LOOP]
    candidates = [JoinMethod.HASH, JoinMethod.MERGE]
    if include_dominated:
        candidates.append(JoinMethod.NESTED_LOOP)
    methods = [m for m in candidates if m in allowed]
    assert primary.equijoin is not None
    left, right = primary.equijoin
    inner_column = left if left.table == inner_table else right
    if JoinMethod.INDEX_NESTED_LOOP in allowed and catalog.table(
        inner_table
    ).has_index(inner_column.attribute):
        methods.append(JoinMethod.INDEX_NESTED_LOOP)
    return methods
