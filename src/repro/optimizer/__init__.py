"""Query optimization: System R join enumeration plus the paper's family of
expensive-predicate placement algorithms.

The entry point is :func:`~repro.optimizer.optimizer.optimize`, which takes a
:class:`~repro.optimizer.query.Query` and a strategy name:

``pushdown``
    PushDown+ — selections below joins, rank-ordered (Section 4.1).
``pullup``
    PullUp — every costly selection at the top of each subplan (Section 4.2).
``pullrank``
    PullRank — per-join rank comparison, one join at a time (Section 4.3).
``migration``
    Predicate Migration — PullRank with unpruneable-subplan retention inside
    System R, then the series–parallel (parallel chains) placement applied
    to every retained plan until fixpoint (Section 4.4).
``ldl``
    LDL — expensive selections become virtual join steps; left-deep
    enumeration forces pullup from inner inputs (Section 3.1).
``exhaustive``
    Full enumeration of orders and placements; optimal, exponential
    (Table 1).
"""

from repro.optimizer.query import Query, true_predicate
from repro.optimizer.guardrails import sanitize_predicate, sanitize_query
from repro.optimizer.optimizer import (
    DEGRADATION_LADDER,
    STRATEGIES,
    OptimizedPlan,
    optimize,
    optimize_degraded,
)
from repro.optimizer.systemr import SystemRPlanner
from repro.optimizer.migration import migrate_plan
from repro.optimizer.ikkbz import ikkbz_order

__all__ = [
    "DEGRADATION_LADDER",
    "STRATEGIES",
    "OptimizedPlan",
    "Query",
    "SystemRPlanner",
    "ikkbz_order",
    "migrate_plan",
    "optimize",
    "optimize_degraded",
    "sanitize_predicate",
    "sanitize_query",
    "true_predicate",
]
