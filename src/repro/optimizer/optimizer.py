"""The optimizer facade: one call, one strategy name, one plan."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.cost.params import CostParams
from repro.errors import OptimizerError, PlanningTimeout, ReproError
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import NULL_LEDGER, skeleton_signature
from repro.obs.tracer import NULL_TRACER
from repro.optimizer.exhaustive import exhaustive_plan
from repro.optimizer.guardrails import sanitize_query
from repro.optimizer.ldl import ldl_plan
from repro.optimizer.ldl_ikkbz import ldl_ikkbz_plan
from repro.optimizer.migration import migrate_plan
from repro.optimizer.policies import (
    MigrationPhaseOnePolicy,
    PullRankPolicy,
    PullUpPolicy,
    PushDownPolicy,
)
from repro.optimizer.query import Query
from repro.optimizer.systemr import SystemRPlanner
from repro.plan.nodes import Plan


def _policy_strategy(policy_factory):
    def strategy(
        query: Query,
        catalog: Catalog,
        model: CostModel,
        bushy: bool = False,
        tracer=NULL_TRACER,
        notes: dict | None = None,
        profiler=NULL_PROFILER,
        ledger=NULL_LEDGER,
    ) -> Plan:
        policy = policy_factory()
        planner = SystemRPlanner(
            catalog, model, policy, bushy=bushy, tracer=tracer,
            profiler=profiler, ledger=ledger,
        )
        with tracer.span("enumerate", policy=policy.name):
            plan = planner.plan(query)
        if notes is not None:
            notes.update(planner.notes())
        return plan

    return strategy


def migration_strategy(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    bushy: bool = False,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
) -> Plan:
    """Predicate Migration: PullRank enumeration with unpruneable retention,
    then series–parallel migration of every retained plan (Section 4.4).
    With ``bushy=True``, enumeration covers bushy trees and migration runs
    the paper's per-root-to-leaf-path formulation."""
    planner = SystemRPlanner(
        catalog, model, MigrationPhaseOnePolicy(), bushy=bushy,
        tracer=tracer, profiler=profiler, ledger=ledger,
    )
    with tracer.span("enumerate", policy=planner.policy.name):
        candidates = planner.final_candidates(query)
    migration_notes: dict = {}
    best: Plan | None = None
    best_index = -1
    with tracer.span("migrate", candidates=len(candidates)) as span:
        for index, candidate in enumerate(candidates):
            migrated = migrate_plan(
                Plan(candidate.node, candidate.estimate.cost,
                     candidate.estimate.rows),
                model,
                tracer=tracer,
                notes=migration_notes,
                profiler=profiler,
                ledger=ledger,
                candidate=index,
            )
            if best is None or migrated.estimated_cost < best.estimated_cost:
                best = migrated
                best_index = index
        assert best is not None
        span.set(best_cost=best.estimated_cost)
    if ledger.enabled:
        ledger.record(
            "migration.select_best",
            candidate=best_index,
            cost=best.estimated_cost,
            signature=skeleton_signature(best.root),
        )
    if notes is not None:
        notes.update(planner.notes())
        notes.update(migration_notes)
    return best


def exhaustive_strategy(
    query: Query,
    catalog: Catalog,
    model: CostModel,
    bushy: bool = False,
    tracer=NULL_TRACER,
    notes: dict | None = None,
    profiler=NULL_PROFILER,
    ledger=NULL_LEDGER,
) -> Plan:
    # Exhaustive placement enumerates left-deep orders; it is already the
    # optimal baseline for the workloads (bushy shapes add nothing for
    # standard joins under the linear model's left-deep assumptions).
    del bushy
    with tracer.span("enumerate", policy="exhaustive"):
        return exhaustive_plan(
            query, catalog, model, tracer=tracer, notes=notes,
            profiler=profiler, ledger=ledger,
        )


STRATEGIES = {
    "pushdown": _policy_strategy(PushDownPolicy),
    "pullup": _policy_strategy(PullUpPolicy),
    "pullrank": _policy_strategy(PullRankPolicy),
    "migration": migration_strategy,
    "ldl": ldl_plan,
    "ldl-ikkbz": ldl_ikkbz_plan,
    "exhaustive": exhaustive_strategy,
}


@dataclass
class OptimizedPlan:
    """A plan plus how it was obtained.

    ``notes`` holds the strategy's decision counts: every strategy reports
    at least ``subplans_enumerated`` and ``subplans_pruned``, plus
    strategy-specific counters (pullup verdicts, migration fixpoint
    iterations and predicate moves, DP states, interleavings counted).
    """

    plan: Plan
    strategy: str
    planning_seconds: float
    query_name: str = ""
    notes: dict = field(default_factory=dict)
    #: The placement-decision ledger (:mod:`repro.obs.provenance`), set
    #: only when ``optimize(..., ledger=...)`` was given a live ledger.
    provenance: object | None = None

    @property
    def estimated_cost(self) -> float:
        assert self.plan.estimated_cost is not None
        return self.plan.estimated_cost


def optimize(
    db,
    query: Query,
    strategy: str = "migration",
    caching: bool = False,
    global_model: bool = False,
    params: CostParams | None = None,
    bushy: bool = False,
    tracer=None,
    profiler=None,
    ledger=None,
) -> OptimizedPlan:
    """Optimize ``query`` against ``db`` with the named placement strategy.

    ``caching`` switches the cost model to value-based rank arithmetic
    (Section 5.1) — pair it with ``Executor(db, caching=True)``.
    ``global_model`` selects the discarded [HS93a] cost model (ablation).
    ``bushy`` enables bushy join trees for the enumeration-based strategies
    (the paper's suggested fix for LDL's left-deep limitation).
    ``tracer`` (a :class:`repro.obs.Tracer`) records nested spans for each
    optimizer phase and the strategy's per-decision events; the default is
    the zero-overhead null tracer. ``profiler`` (a
    :class:`repro.obs.PhaseProfiler`) accumulates wall-clock per optimizer
    phase — System R enumeration levels, migration fixpoint rounds,
    exhaustive join orders, LDL DP steps — under the same null-object
    default. ``ledger`` (a :class:`repro.obs.ProvenanceLedger`) records the
    placement decisions themselves; when live, it is attached to the
    returned plan as :attr:`OptimizedPlan.provenance`.
    """
    try:
        strategy_fn = STRATEGIES[strategy]
    except KeyError:
        raise OptimizerError(
            f"unknown strategy {strategy!r}; "
            f"choose one of {sorted(STRATEGIES)}"
        ) from None
    tracer = NULL_TRACER if tracer is None else tracer
    profiler = NULL_PROFILER if profiler is None else profiler
    ledger = NULL_LEDGER if ledger is None else ledger
    model = CostModel(
        db.catalog,
        params or db.params,
        caching=caching,
        global_model=global_model,
    )
    notes: dict = {}
    # Guardrails: no nan/out-of-range statistic may reach a rank or a
    # cost comparison, whichever strategy runs. Honest queries are left
    # bit-identical (and fingerprints unchanged); repaired fields are
    # recorded as ``stats.clamp`` ledger events.
    clamped = sanitize_query(query, ledger=ledger)
    if clamped:
        notes["stats_clamped"] = clamped
    started = time.perf_counter()
    with tracer.span(
        "optimize", strategy=strategy, query=query.name, bushy=bushy
    ) as span, profiler.phase(f"optimize.{strategy}"):
        plan = strategy_fn(
            query, db.catalog, model, bushy=bushy, tracer=tracer,
            notes=notes, profiler=profiler, ledger=ledger,
        )
        span.set(estimated_cost=plan.estimated_cost)
    elapsed = time.perf_counter() - started
    return OptimizedPlan(
        plan=plan,
        strategy=strategy,
        planning_seconds=elapsed,
        query_name=query.name,
        notes=notes,
        provenance=ledger if ledger.enabled else None,
    )


#: The graceful-degradation ladder, best plan quality first. Each rung is
#: strictly cheaper to run than the one before it, so falling down the
#: ladder trades plan quality for planning reliability — never the other
#: way around. PushDown is the floor: it is the classical System R
#: behaviour and cannot fail on any query the binder accepts.
DEGRADATION_LADDER = ("exhaustive", "migration", "pullrank", "pushdown")


def optimize_degraded(
    db,
    query: Query,
    strategy: str = "exhaustive",
    ladder: tuple[str, ...] = DEGRADATION_LADDER,
    planning_budget: float | None = None,
    fault_plan=None,
    **kwargs,
) -> OptimizedPlan:
    """Optimize with graceful degradation down the strategy ladder.

    Tries ``strategy`` first, then every ladder rung below it (rungs at
    or above the requested strategy are skipped — falling *up* to a more
    expensive planner would defeat the point). Each rung runs under a
    try/except: a :class:`~repro.errors.ReproError` (strategy crash,
    rejected query shape) or a blown ``planning_budget`` (seconds,
    checked per rung) degrades to the next rung instead of propagating.

    The returned plan's ``notes["degraded"]`` lists what failed and why,
    and each failure is recorded as a ``planner.degraded`` provenance
    event when a live ledger is passed — so ``repro why`` can explain a
    degraded run. Only when *every* rung fails does an
    :class:`~repro.errors.OptimizerError` escape.

    ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) lets chaos
    tests fail specific strategies deterministically via its
    ``planner_faults`` map.
    """
    if strategy not in STRATEGIES:
        raise OptimizerError(
            f"unknown strategy {strategy!r}; "
            f"choose one of {sorted(STRATEGIES)}"
        )
    rungs = [strategy]
    tail = (
        ladder[ladder.index(strategy) + 1:]
        if strategy in ladder
        else ladder
    )
    for rung in tail:
        if rung not in rungs:
            rungs.append(rung)
    ledger = kwargs.get("ledger")
    degraded: list[str] = []
    for index, rung in enumerate(rungs):
        last = index == len(rungs) - 1
        try:
            if fault_plan is not None:
                reason = fault_plan.planner_fault(rung)
                if reason is not None:
                    raise OptimizerError(
                        f"strategy {rung!r} failed: {reason}"
                    )
            optimized = optimize(db, query, strategy=rung, **kwargs)
            if (
                planning_budget is not None
                and optimized.planning_seconds > planning_budget
                and not last
            ):
                raise PlanningTimeout(
                    rung, optimized.planning_seconds, planning_budget
                )
        except ReproError as error:
            note = f"{rung}: {type(error).__name__}: {error}"
            degraded.append(note)
            if ledger is not None and ledger.enabled:
                ledger.record(
                    "planner.degraded",
                    strategy=rung,
                    error=type(error).__name__,
                    detail=str(error),
                    next_rung=None if last else rungs[index + 1],
                )
            if last:
                raise OptimizerError(
                    "every ladder rung failed: " + "; ".join(degraded)
                ) from error
            continue
        if degraded:
            optimized.notes["degraded"] = list(degraded)
            optimized.notes["requested_strategy"] = strategy
        return optimized
    raise OptimizerError("empty strategy ladder")  # pragma: no cover
