"""IK-KBZ polynomial-time join ordering [IK84, KBZ86].

The paper discusses IK-KBZ as the optimizer the LDL approach was grafted
onto [KZ88]: it linearises an *acyclic* join graph in polynomial time using
the same rank/module machinery as Predicate Migration (both descend from
the Monma–Sidney series–parallel results).

The implementation works on the classic ASI ("adjacent sequence
interchange") cost function:

    C(ε) = 0,          T(ε) = 1,
    C(S1 S2) = C(S1) + T(S1)·C(S2),
    T(S1 S2) = T(S1)·T(S2),
    rank(S)  = (T(S) − 1) / C(S).

Each non-root node carries ``T = s_edge · n`` and ``C = n`` for a relation
of cardinality ``n`` whose edge to its parent has selectivity ``s_edge``;
a *virtual predicate node* (the LDL rewrite) carries ``T = selectivity``
and ``C = cost_per_tuple``, which makes its rank exactly the paper's
predicate rank. For every possible root, the precedence tree is linearised
bottom-up — children chains are normalised into non-decreasing-rank
modules and merged by rank — and the cheapest rooting wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OptimizerError


@dataclass(frozen=True)
class IKKBZNode:
    """One node of the precedence graph: a relation or a virtual predicate."""

    name: str
    t: float
    c: float

    @property
    def rank(self) -> float:
        if self.c <= 0:
            return float("-inf") if self.t < 1 else float("inf")
        return (self.t - 1.0) / self.c


@dataclass
class _Chain:
    """A normalised module: a run of nodes treated as one unit."""

    names: list[str]
    t: float
    c: float

    @property
    def rank(self) -> float:
        if self.c <= 0:
            return float("-inf") if self.t < 1 else float("inf")
        return (self.t - 1.0) / self.c

    def merge(self, upper: "_Chain") -> "_Chain":
        return _Chain(
            names=self.names + upper.names,
            t=self.t * upper.t,
            c=self.c + self.t * upper.c,
        )


@dataclass
class IKKBZResult:
    order: list[str]
    cost: float
    root: str = ""
    per_root_costs: dict[str, float] = field(default_factory=dict)


def sequence_cost(nodes: list[IKKBZNode]) -> float:
    """ASI cost of executing ``nodes`` in the given order."""
    cost = 0.0
    t = 1.0
    for node in nodes:
        cost += t * node.c
        t *= node.t
    return cost


def _normalize(chains: list[_Chain]) -> list[_Chain]:
    normalized: list[_Chain] = []
    for chain in chains:
        normalized.append(chain)
        while (
            len(normalized) >= 2
            and normalized[-1].rank < normalized[-2].rank
        ):
            upper = normalized.pop()
            lower = normalized.pop()
            normalized.append(lower.merge(upper))
    return normalized


def _merge_by_rank(chain_lists: list[list[_Chain]]) -> list[_Chain]:
    """Merge independent normalised chains into one by ascending rank."""
    flattened = [chain for chains in chain_lists for chain in chains]
    flattened.sort(key=lambda chain: chain.rank)
    return flattened


def _linearize(
    node: str,
    children: dict[str, list[str]],
    values: dict[str, IKKBZNode],
) -> list[_Chain]:
    child_chains = [
        _linearize(child, children, values) for child in children[node]
    ]
    merged = _merge_by_rank(child_chains)
    own = values[node]
    head = _Chain([node], own.t, own.c)
    return _normalize([head] + merged)


def ikkbz_order(
    nodes: list[IKKBZNode],
    edges: list[tuple[str, str]],
    roots: list[str] | None = None,
) -> IKKBZResult:
    """Best linearisation of an acyclic precedence graph.

    ``edges`` are undirected adjacencies of the (tree-shaped) query graph.
    ``roots`` restricts the candidate first relations (default: all nodes).
    """
    values = {node.name: node for node in nodes}
    if len(values) != len(nodes):
        raise OptimizerError("duplicate node names in IK-KBZ input")
    adjacency: dict[str, list[str]] = {name: [] for name in values}
    for left, right in edges:
        if left not in values or right not in values:
            raise OptimizerError(f"edge ({left}, {right}) references unknown node")
        adjacency[left].append(right)
        adjacency[right].append(left)
    if len(edges) != len(values) - 1:
        raise OptimizerError(
            "IK-KBZ requires a tree query graph "
            f"({len(values)} nodes need {len(values) - 1} edges, "
            f"got {len(edges)})"
        )

    best: IKKBZResult | None = None
    per_root: dict[str, float] = {}
    for root in roots or sorted(values):
        children = _root_tree(root, adjacency)
        chains = _linearize(root, children, values)
        order = [name for chain in chains for name in chain.names]
        cost = sequence_cost([values[name] for name in order])
        per_root[root] = cost
        if best is None or cost < best.cost:
            best = IKKBZResult(order=order, cost=cost, root=root)
    assert best is not None
    best.per_root_costs = per_root
    return best


def ikkbz_linearize(
    values: dict[str, IKKBZNode],
    adjacency: dict[str, list[str]],
    root: str,
) -> list[str]:
    """Linearise one rooting of a precedence tree (exposed for callers that
    compute per-rooting node values, like the LDL/IK-KBZ strategy)."""
    children = _root_tree(root, adjacency)
    chains = _linearize(root, children, values)
    return [name for chain in chains for name in chain.names]


def _root_tree(
    root: str, adjacency: dict[str, list[str]]
) -> dict[str, list[str]]:
    """Orient the undirected tree away from ``root`` (BFS)."""
    children: dict[str, list[str]] = {name: [] for name in adjacency}
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                children[node].append(neighbour)
                frontier.append(neighbour)
    if len(seen) != len(adjacency):
        raise OptimizerError("IK-KBZ query graph is disconnected")
    return children
