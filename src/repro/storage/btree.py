"""Page-based B-tree indexes.

Unclustered secondary indexes, as in the paper's schema ("all other
attributes have B-tree indices defined over them"). Every node is a page;
traversals charge one random I/O per node through the shared buffer pool, so
an index probe costs ~`height` I/Os — the paper's "typically 3 I/Os or less"
for nested-loop join with an indexed inner.

The tree supports bulk loading from unsorted (key, RID) pairs, point and
range searches returning RIDs, and incremental inserts with node splits.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from repro.storage.buffer import BufferPool
from repro.storage.meter import IOKind
from repro.storage.page import DEFAULT_PAGE_SIZE, RID

#: Modelled bytes per index entry (key + pointer).
ENTRY_WIDTH = 16


class _Node:
    """Base class for B-tree nodes; ``page_no`` keys the buffer pool."""

    __slots__ = ("page_no", "keys")

    def __init__(self, page_no: int) -> None:
        self.page_no = page_no
        self.keys: list = []


class _Leaf(_Node):
    __slots__ = ("rids", "next_leaf")

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        self.rids: list[RID] = []
        self.next_leaf: _Leaf | None = None


class _Internal(_Node):
    """Internal node: ``children[i]`` holds keys < ``keys[i]``;
    ``children[-1]`` holds the rest."""

    __slots__ = ("children",)

    def __init__(self, page_no: int) -> None:
        super().__init__(page_no)
        self.children: list[_Node] = []


def _min_key(node: _Node) -> object:
    """Smallest key in a subtree (the separator for its right position)."""
    while isinstance(node, _Internal):
        node = node.children[0]
    return node.keys[0]


class BTree:
    """A B-tree over one attribute of one heap file."""

    def __init__(
        self,
        name: str,
        pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
        fanout: int | None = None,
    ) -> None:
        self.name = name
        self.pool = pool
        self.page_size = page_size
        self.file_id = pool.register_file()
        self.fanout = fanout or max(4, page_size // ENTRY_WIDTH)
        self._next_page = 0
        self._root: _Node = self._new_leaf()
        self._entries = 0

    # -- node allocation ---------------------------------------------------

    def _new_leaf(self) -> _Leaf:
        node = _Leaf(self._next_page)
        self._next_page += 1
        return node

    def _new_internal(self) -> _Internal:
        node = _Internal(self._next_page)
        self._next_page += 1
        return node

    def _touch(self, node: _Node) -> None:
        self.pool.fetch(self.file_id, node.page_no, IOKind.RANDOM)

    # -- metadata ------------------------------------------------------------

    @property
    def entries(self) -> int:
        return self._entries

    @property
    def pages(self) -> int:
        return self._next_page

    @property
    def height(self) -> int:
        """Number of levels (1 = a lone leaf)."""
        height = 1
        node = self._root
        while isinstance(node, _Internal):
            height += 1
            node = node.children[0]
        return height

    # -- bulk load -----------------------------------------------------------

    def bulk_load(self, pairs: list[tuple[object, RID]]) -> None:
        """Replace the tree's contents with ``pairs`` (need not be sorted).

        No I/O is charged: like heap population, index builds model the
        pre-existing database.
        """
        ordered = sorted(pairs, key=lambda pair: pair[0])
        self._next_page = 0
        self._entries = len(ordered)
        if not ordered:
            self._root = self._new_leaf()
            return

        # Pack leaves at ~full fanout.
        leaves: list[_Leaf] = []
        for start in range(0, len(ordered), self.fanout):
            leaf = self._new_leaf()
            chunk = ordered[start : start + self.fanout]
            leaf.keys = [key for key, _ in chunk]
            leaf.rids = [rid for _, rid in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)

        # Build internal levels bottom-up, distributing children evenly so
        # no internal node is left with a single child.
        level: list[_Node] = list(leaves)
        while len(level) > 1:
            count = len(level)
            groups = -(-count // self.fanout)  # ceil
            base, extra = divmod(count, groups)
            parents: list[_Node] = []
            start = 0
            for group_index in range(groups):
                size = base + (1 if group_index < extra else 0)
                group = level[start : start + size]
                start += size
                parent = self._new_internal()
                parent.children = group
                parent.keys = [_min_key(child) for child in group[1:]]
                parents.append(parent)
            level = parents
        self._root = level[0]
        self.pool.invalidate_file(self.file_id)

    # -- search ---------------------------------------------------------------

    def _descend(self, key: object) -> _Leaf:
        """Leftmost leaf that may contain ``key``.

        Uses ``bisect_left`` so that duplicates equal to a separator key
        (which may spill into the left sibling subtree) are not skipped;
        the leaf chain then carries the scan rightward.
        """
        node = self._root
        self._touch(node)
        while isinstance(node, _Internal):
            child_index = bisect.bisect_left(node.keys, key)
            node = node.children[child_index]
            self._touch(node)
        assert isinstance(node, _Leaf)
        return node

    def search(self, key: object) -> list[RID]:
        """All RIDs whose indexed value equals ``key``."""
        return [rid for _, rid in self.range_entries(key, key)]

    def range_entries(
        self, low: object, high: object
    ) -> Iterator[tuple[object, RID]]:
        """All (key, RID) pairs with ``low <= key <= high``, in key order."""
        if self._entries == 0 or low > high:  # type: ignore[operator]
            return
        leaf: _Leaf | None = self._descend(low)
        while leaf is not None:
            start = bisect.bisect_left(leaf.keys, low)
            for position in range(start, len(leaf.keys)):
                key = leaf.keys[position]
                if key > high:  # type: ignore[operator]
                    return
                yield (key, leaf.rids[position])
            leaf = leaf.next_leaf
            if leaf is not None:
                self._touch(leaf)

    def range_search(self, low: object, high: object) -> list[RID]:
        """All RIDs with ``low <= key <= high``, in key order."""
        return [rid for _, rid in self.range_entries(low, high)]

    # -- insert ----------------------------------------------------------------

    def insert(self, key: object, rid: RID) -> None:
        """Insert one entry, splitting nodes as needed (charges I/O)."""
        split = self._insert_into(self._root, key, rid)
        if split is not None:
            separator, new_child = split
            new_root = self._new_internal()
            new_root.keys = [separator]
            new_root.children = [self._root, new_child]
            self._root = new_root
        self._entries += 1

    def _insert_into(
        self, node: _Node, key: object, rid: RID
    ) -> tuple[object, _Node] | None:
        self._touch(node)
        if isinstance(node, _Leaf):
            position = bisect.bisect_right(node.keys, key)
            node.keys.insert(position, key)
            node.rids.insert(position, rid)
            if len(node.keys) <= self.fanout:
                return None
            return self._split_leaf(node)

        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, rid)
        if split is None:
            return None
        separator, new_child = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, new_child)
        if len(node.children) <= self.fanout:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf) -> tuple[object, _Node]:
        middle = len(leaf.keys) // 2
        sibling = self._new_leaf()
        sibling.keys = leaf.keys[middle:]
        sibling.rids = leaf.rids[middle:]
        sibling.next_leaf = leaf.next_leaf
        leaf.keys = leaf.keys[:middle]
        leaf.rids = leaf.rids[:middle]
        leaf.next_leaf = sibling
        return (sibling.keys[0], sibling)

    def _split_internal(self, node: _Internal) -> tuple[object, _Node]:
        middle = len(node.children) // 2
        sibling = self._new_internal()
        separator = node.keys[middle - 1]
        sibling.keys = node.keys[middle:]
        sibling.children = node.children[middle:]
        node.keys = node.keys[: middle - 1]
        node.children = node.children[:middle]
        return (separator, sibling)

    # -- verification (tests) ----------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        leaves = self._check_node(self._root, None, None, is_root=True)
        seen = 0
        previous_key = None
        for leaf in leaves:
            for key in leaf.keys:
                if previous_key is not None:
                    assert key >= previous_key, "leaf keys out of order"
                previous_key = key
                seen += 1
        assert seen == self._entries, "entry count mismatch"
        # Leaf chain covers exactly the leaves, in order.
        chain = []
        node: _Node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: _Leaf | None = node  # type: ignore[assignment]
        while leaf is not None:
            chain.append(leaf)
            leaf = leaf.next_leaf
        assert chain == leaves, "leaf chain does not match tree leaves"

    def _check_node(
        self, node: _Node, low: object, high: object, is_root: bool = False
    ) -> list[_Leaf]:
        for key in node.keys:
            if low is not None:
                assert key >= low, "key below subtree lower bound"
            if high is not None:
                # Non-strict: duplicates of a separator may sit in the left
                # sibling subtree (the separator is the right subtree's min).
                assert key <= high, "key above subtree upper bound"
        if isinstance(node, _Leaf):
            assert node.keys == sorted(node.keys), "unsorted leaf"
            assert len(node.keys) == len(node.rids), "leaf shape mismatch"
            return [node]
        assert isinstance(node, _Internal)
        assert len(node.children) == len(node.keys) + 1, "internal shape"
        if not is_root:
            assert len(node.children) >= 2, "underfull internal node"
        leaves: list[_Leaf] = []
        bounds = [low, *node.keys, high]
        for position, child in enumerate(node.children):
            leaves.extend(
                self._check_node(child, bounds[position], bounds[position + 1])
            )
        return leaves
