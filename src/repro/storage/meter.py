"""Charged-cost accounting in the paper's currency.

Section 2 of the paper defines costs in units of random database I/Os: the
function ``costly100`` "takes as much time per invocation as the I/O time
used by a query which touches 100 unclustered tuples". The paper measures
queries by counting function invocations and multiplying by the function's
cost, then adding that to the measured I/O time.

:class:`CostMeter` is the single ledger for all of that: random page reads
(1 unit each), sequential page reads (``seq_weight`` units each, default
0.25 — sequential transfers amortise seeks), and charged function cost. An
optional budget turns runaway plans into :class:`BudgetExceededError`
aborts, reproducing the paper's Query 5 "never completed" footnote without
hanging the harness.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError

#: Default relative cost of a sequential page read vs a random one.
DEFAULT_SEQ_WEIGHT = 0.25


class IOKind(enum.Enum):
    """How a page access should be charged."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"


@dataclass
class CostMeter:
    """Ledger of charged execution cost, in random-I/O units."""

    seq_weight: float = DEFAULT_SEQ_WEIGHT
    budget: float | None = None
    random_ios: int = field(default=0, init=False)
    seq_ios: int = field(default=0, init=False)
    function_calls: int = field(default=0, init=False)
    function_charged: float = field(default=0.0, init=False)
    cpu_charged: float = field(default=0.0, init=False)
    #: Charges whose per-call cost was non-finite or negative (a UDF lying
    #: about its catalog cost) and was clamped to 0 instead of poisoning
    #: the ledger — one ``nan`` would otherwise disable budget checks.
    clamped_charges: int = field(default=0, init=False)

    @property
    def io_charged(self) -> float:
        """Charged I/O cost only (no function cost)."""
        return self.random_ios + self.seq_ios * self.seq_weight

    @property
    def charged(self) -> float:
        """Total charged cost: I/O, join CPU, and function invocations."""
        return self.io_charged + self.cpu_charged + self.function_charged

    def charge_io(self, kind: IOKind, pages: int = 1) -> None:
        """Charge ``pages`` page reads of the given kind."""
        if pages < 0:
            raise ValueError(f"pages must be non-negative, got {pages}")
        if kind is IOKind.RANDOM:
            self.random_ios += pages
        else:
            self.seq_ios += pages
        self._check_budget()

    def charge_function(self, cost_per_call: float, calls: int = 1) -> None:
        """Charge ``calls`` invocations of a function of the given cost."""
        if calls < 0:
            raise ValueError(f"calls must be non-negative, got {calls}")
        if not math.isfinite(cost_per_call) or cost_per_call < 0:
            cost_per_call = 0.0
            self.clamped_charges += calls
        self.function_calls += calls
        self.function_charged += cost_per_call * calls
        self._check_budget()

    def charge_cpu(self, units: float) -> None:
        """Charge per-tuple join processing cost."""
        if units < 0:
            raise ValueError(f"units must be non-negative, got {units}")
        self.cpu_charged += units
        self._check_budget()

    def _check_budget(self) -> None:
        if self.budget is not None and self.charged > self.budget:
            raise BudgetExceededError(self.charged, self.budget)

    def reset(self) -> None:
        self.random_ios = 0
        self.seq_ios = 0
        self.function_calls = 0
        self.function_charged = 0.0
        self.cpu_charged = 0.0
        self.clamped_charges = 0

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of the counters, for reports and tests."""
        return {
            "random_ios": self.random_ios,
            "seq_ios": self.seq_ios,
            "function_calls": self.function_calls,
            "function_charged": self.function_charged,
            "cpu_charged": self.cpu_charged,
            "io_charged": self.io_charged,
            "charged": self.charged,
        }
