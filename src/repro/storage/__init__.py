"""Page-based storage engine with I/O accounting.

This package stands in for Montage's storage layer. It is deliberately
simple — fixed-width tuples in heap pages, an LRU buffer pool, bulk-loadable
B-trees — but every page access flows through the buffer pool and is charged
to a :class:`~repro.storage.meter.CostMeter` in the paper's currency
(1 unit = 1 random page I/O). All performance comparisons in the
reproduction are expressed in these charged units, matching the paper's
"relative, not absolute" methodology.
"""

from repro.storage.meter import CostMeter, IOKind
from repro.storage.page import Page, RID
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.btree import BTree
from repro.storage.columnar import DEFAULT_BATCH_ROWS, ColumnBatch

__all__ = [
    "BTree",
    "BufferPool",
    "ColumnBatch",
    "CostMeter",
    "DEFAULT_BATCH_ROWS",
    "HeapFile",
    "IOKind",
    "Page",
    "RID",
]
