"""LRU buffer pool with hit/miss and sequential/random accounting.

Every page read in the system flows through :meth:`BufferPool.fetch`. Hits
are free; misses are charged to the :class:`~repro.storage.meter.CostMeter`
as one random or sequential I/O, per the caller's access hint. The pool is
shared across all heap files and indexes of a database, like the paper's
32 MB SparcStation buffer cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.meter import CostMeter, IOKind

#: Cache key: (file identifier, page number).
PageKey = tuple[int, int]


@dataclass
class BufferStats:
    """Hit/miss counters, exposed for tests and reports."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class BufferPool:
    """A fixed-capacity LRU cache of page keys.

    The pool caches *keys*, not page contents — page objects live in their
    heap files and indexes, and Python's references make copying pointless.
    What matters for the reproduction is the I/O accounting: a fetch of an
    uncached key is a miss and costs one I/O of the hinted kind.
    """

    def __init__(self, capacity_pages: int, meter: CostMeter) -> None:
        if capacity_pages < 1:
            raise ValueError(
                f"capacity_pages must be positive, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self.meter = meter
        self.stats = BufferStats()
        self._lru: OrderedDict[PageKey, None] = OrderedDict()
        self._next_file_id = 0

    def register_file(self) -> int:
        """Allocate a unique file identifier for a heap file or index."""
        file_id = self._next_file_id
        self._next_file_id += 1
        return file_id

    def fetch(self, file_id: int, page_no: int, kind: IOKind) -> None:
        """Record an access to a page, charging an I/O on a miss."""
        key = (file_id, page_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.stats.hits += 1
            return
        self.stats.misses += 1
        self.meter.charge_io(kind)
        self._lru[key] = None
        if len(self._lru) > self.capacity_pages:
            self._lru.popitem(last=False)

    def invalidate_file(self, file_id: int) -> None:
        """Drop all cached pages of one file (e.g. after a rebuild)."""
        for key in [k for k in self._lru if k[0] == file_id]:
            del self._lru[key]

    def clear(self) -> None:
        """Empty the pool (cold-cache experiments)."""
        self._lru.clear()

    def reset_stats(self) -> None:
        self.stats = BufferStats()

    @property
    def cached_pages(self) -> int:
        return len(self._lru)
