"""Heap files: unordered pages of fixed-width tuples.

A heap file owns its pages and exposes page-at-a-time scans whose I/O is
charged through the shared buffer pool. Sequential scans use the sequential
I/O rate; RID fetches (as done by unclustered index scans) use the random
rate, matching the paper's "unclustered tuples" costing.
"""

from __future__ import annotations

from typing import Iterator

from repro.storage.buffer import BufferPool
from repro.storage.meter import IOKind
from repro.storage.page import DEFAULT_PAGE_SIZE, Page, RID, tuples_per_page


class HeapFile:
    """An append-only heap of fixed-width tuples."""

    def __init__(
        self,
        name: str,
        tuple_width: int,
        pool: BufferPool,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.name = name
        self.tuple_width = tuple_width
        self.page_size = page_size
        self.pool = pool
        self.file_id = pool.register_file()
        self._capacity = tuples_per_page(page_size, tuple_width)
        self._pages: list[Page] = []
        self._cardinality = 0

    # -- population ------------------------------------------------------

    def insert(self, row: tuple) -> RID:
        """Append one tuple, returning its RID. No I/O is charged: bulk
        population models the pre-existing database, not query work."""
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(len(self._pages), self._capacity))
        page = self._pages[-1]
        slot = page.insert(row)
        self._cardinality += 1
        return (page.page_no, slot)

    def bulk_load(self, rows: Iterator[tuple]) -> None:
        for row in rows:
            self.insert(row)

    # -- access ----------------------------------------------------------

    @property
    def pages(self) -> int:
        return len(self._pages)

    @property
    def cardinality(self) -> int:
        return self._cardinality

    def scan_pages(self) -> Iterator[Page]:
        """Full sequential scan, charging one sequential I/O per page."""
        for page in self._pages:
            self.pool.fetch(self.file_id, page.page_no, IOKind.SEQUENTIAL)
            yield page

    def scan(self) -> Iterator[tuple]:
        """Full sequential scan, tuple at a time."""
        for page in self.scan_pages():
            yield from page.rows

    def fetch_rid(self, rid: RID) -> tuple:
        """Random fetch of one tuple by RID (unclustered index access)."""
        page_no, slot = rid
        self.pool.fetch(self.file_id, page_no, IOKind.RANDOM)
        return self._pages[page_no].slot(slot)

    def all_rows(self) -> list[tuple]:
        """Uncharged access to every row — for statistics and tests only."""
        rows: list[tuple] = []
        for page in self._pages:
            rows.extend(page.rows)
        return rows
