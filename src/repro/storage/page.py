"""Fixed-capacity pages of fixed-width tuples.

A page holds at most ``page_size // tuple_width`` tuples. Tuples are plain
Python tuples; the *byte* accounting (the paper's 100-byte tuples, 8 KB
pages) is modelled through the declared widths rather than through actual
serialisation, which keeps the simulator honest about page counts and I/O
volume without paying Python serialisation overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PageFullError

#: Default page size in bytes.
DEFAULT_PAGE_SIZE = 8192

#: A record identifier: (page number, slot within page).
RID = tuple[int, int]


def tuples_per_page(page_size: int, tuple_width: int) -> int:
    """How many fixed-width tuples fit on one page (always at least 1)."""
    return max(1, page_size // tuple_width)


@dataclass
class Page:
    """One heap page: a slotted array of tuples with a fixed capacity."""

    page_no: int
    capacity: int
    rows: list[tuple] = field(default_factory=list)

    def insert(self, row: tuple) -> int:
        """Append ``row``; return its slot. Raises when the page is full."""
        if self.is_full:
            raise PageFullError(
                f"page {self.page_no} is full (capacity {self.capacity})"
            )
        self.rows.append(row)
        return len(self.rows) - 1

    @property
    def is_full(self) -> bool:
        return len(self.rows) >= self.capacity

    def slot(self, slot_no: int) -> tuple:
        return self.rows[slot_no]

    def __len__(self) -> int:
        return len(self.rows)
