"""Columnar batches over heap pages: the vector executor's data carrier.

A :class:`ColumnBatch` covers a run of rows under one :class:`Scope`.
Storage is row-major (tuples straight off the heap pages or out of a
join), with *late-materialised* columns: :meth:`ColumnBatch.column`
builds the requested slot's column on first access and caches it, so a
filter touching two of eight attributes never transposes the other six.
Integer columns pack into ``array('q')`` (the project is pure stdlib —
``dependencies = []``); anything else stays a plain list.

Selection vectors are byte masks (``bytearray`` of 0/1): predicates fill
a mask over the batch, :meth:`ColumnBatch.take` gathers the survivors
with :func:`itertools.compress` (C speed), and downstream operators only
ever see surviving elements — which is what lets batch predicate
evaluation charge each expensive-UDF call only for selection-vector
survivors.

An *optional* numpy fast path accelerates mask counting when numpy
happens to be installed; everything works identically (and is tested)
without it.

The batch reader (:func:`batches_from_heap`) sits on the existing
:meth:`~repro.storage.heap.HeapFile.scan_pages`, so sequential I/O is
charged per heap page through the buffer pool exactly as the row
executor charges it.
"""

from __future__ import annotations

from array import array
from itertools import compress
from typing import Iterable, Iterator

from repro.expr.expressions import Scope

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover - the stdlib-only default
    _np = None

#: Default number of rows per batch. Large enough to amortise per-batch
#: bookkeeping, small enough to keep intermediate gathers cache-friendly.
DEFAULT_BATCH_ROWS = 1024

#: Integer columns pack into this array typecode (signed 64-bit).
_INT_TYPECODE = "q"


def _pack_column(values: list) -> "array | list":
    """Pack a column into ``array('q')`` when every value is a machine
    int; otherwise keep the list (strings, floats, NULLs, mixed)."""
    try:
        return array(_INT_TYPECODE, values)
    except (TypeError, OverflowError):
        return values


def mask_count(mask: bytearray) -> int:
    """Number of set positions in a selection mask."""
    if _np is not None and len(mask) >= 512:
        return int(_np.frombuffer(mask, dtype=_np.uint8).sum())
    return sum(mask)


class ColumnBatch:
    """A fixed scope's worth of rows with lazily-materialised columns."""

    __slots__ = ("scope", "rows", "length", "_columns")

    def __init__(self, scope: Scope, rows: list[tuple]) -> None:
        self.scope = scope
        self.rows = rows
        self.length = len(rows)
        self._columns: dict[int, "array | list"] = {}

    @classmethod
    def from_rows(cls, scope: Scope, rows: list[tuple]) -> "ColumnBatch":
        return cls(scope, rows)

    def column(self, slot: int) -> "array | list":
        """The slot's packed column, materialised on first access."""
        column = self._columns.get(slot)
        if column is None:
            column = _pack_column([row[slot] for row in self.rows])
            self._columns[slot] = column
        return column

    def take(self, mask: bytearray) -> "ColumnBatch":
        """Gather the selection-vector survivors into a new batch."""
        if mask_count(mask) == self.length:
            return self
        return ColumnBatch(self.scope, list(compress(self.rows, mask)))

    def iter_rows(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return self.length


def batches_from_rows(
    scope: Scope, rows: Iterable[tuple], batch_rows: int = DEFAULT_BATCH_ROWS
) -> Iterator[ColumnBatch]:
    """Chunk a row stream into column batches."""
    buffer: list[tuple] = []
    append = buffer.append
    for row in rows:
        append(row)
        if len(buffer) >= batch_rows:
            yield ColumnBatch(scope, buffer)
            buffer = []
            append = buffer.append
    if buffer:
        yield ColumnBatch(scope, buffer)


def batches_from_heap(
    heap, scope: Scope, batch_rows: int = DEFAULT_BATCH_ROWS
) -> Iterator[ColumnBatch]:
    """Columnar batch reader over heap pages.

    Pages are pulled through :meth:`HeapFile.scan_pages`, which charges
    one sequential I/O per page via the buffer pool — the identical
    charge stream the row executor's sequential scan produces, just
    grouped batch-at-a-time.
    """
    buffer: list[tuple] = []
    for page in heap.scan_pages():
        buffer.extend(page.rows)
        if len(buffer) >= batch_rows:
            yield ColumnBatch(scope, buffer)
            buffer = []
    if buffer:
        yield ColumnBatch(scope, buffer)
