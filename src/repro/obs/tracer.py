"""Span-based tracing for optimizer and executor decisions.

The paper's argument is all about *why* a placement algorithm chose a
plan — PullRank's per-join rank comparisons, Migration's series–parallel
fixpoint, System R's unpruneable retention. A :class:`Tracer` records that
reasoning as a tree of timed spans with attached events, exportable as
JSONL (one span per line) for offline analysis.

Tracing must cost nothing when off: the default :data:`NULL_TRACER` is a
:class:`NullTracer` whose ``span()`` returns a shared, stateless
:class:`NullSpan` singleton — no allocation, no timestamps, no branching
beyond the method call. Hot loops additionally guard per-decision events
with ``if tracer.enabled:`` so even argument packing is skipped.

JSONL schema (one object per span, in start order)::

    {"span": "optimize", "id": 0, "parent": null, "start_ms": 0.0,
     "duration_ms": 12.3, "attrs": {"strategy": "migration"},
     "events": [{"name": "...", "at_ms": 1.2, ...}, ...]}

``start_ms`` is relative to the tracer's creation, so traces are
deterministic up to wall-clock jitter and never leak absolute times.
"""

from __future__ import annotations

import json
import time
from typing import Iterator


def canonical_value(value):
    """Coerce one attribute value to deterministic, JSON-safe data.

    Applied at *record* time (not export time) so a set of table names or
    a tuple of slots recorded into a span can never make ``export_jsonl``
    — or the Chrome trace export — raise later. Sets and frozensets become
    sorted lists (sorted on a type-then-text key, so mixed element types
    stay orderable); tuples become lists; dict keys become strings;
    anything non-primitive falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (set, frozenset)):
        items = [canonical_value(item) for item in value]
        items.sort(key=_canonical_sort_key)
        return items
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): canonical_value(item) for key, item in value.items()
        }
    return str(value)


def _canonical_sort_key(item) -> tuple[str, str]:
    return (item.__class__.__name__, str(item))


class NullSpan:
    """The do-nothing span: a stateless, reusable context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def event(self, name: str, **attrs: object) -> None:
        """Record nothing."""

    def set(self, **attrs: object) -> None:
        """Record nothing."""


#: Shared instance handed out by :class:`NullTracer` — never allocates.
NULL_SPAN = NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``enabled`` is a class attribute so hot paths can skip event argument
    construction entirely (``if tracer.enabled: tracer.event(...)``).
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: object) -> NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        """Record nothing."""

    def to_records(self) -> list[dict]:
        return []

    def export_jsonl(self, path: str) -> int:
        """Nothing to export; returns 0 without touching the filesystem."""
        return 0


#: Shared default tracer instance.
NULL_TRACER = NullTracer()


class Span(NullSpan):
    """One timed, attributed span in a :class:`Tracer`'s tree."""

    __slots__ = (
        "tracer", "span_id", "parent_id", "name", "start", "end",
        "attrs", "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start: float | None = None
        self.end: float | None = None
        self.attrs = attrs
        self.events: list[dict] = []

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self.tracer._enter(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end = time.perf_counter()
        self.tracer._exit(self)
        return False

    def event(self, name: str, **attrs: object) -> None:
        """Attach a point-in-time event to this span."""
        record = {"name": name, "at_ms": self.tracer._elapsed_ms()}
        for key, value in attrs.items():
            record[key] = canonical_value(value)
        self.events.append(record)

    def set(self, **attrs: object) -> None:
        """Merge attributes into the span (e.g. results known at exit)."""
        for key, value in attrs.items():
            self.attrs[key] = canonical_value(value)

    def to_record(self, epoch: float) -> dict:
        start = self.start if self.start is not None else epoch
        end = self.end if self.end is not None else start
        return {
            "span": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_ms": (start - epoch) * 1000.0,
            "duration_ms": (end - start) * 1000.0,
            "attrs": self.attrs,
            "events": self.events,
        }


class Tracer(NullTracer):
    """Records nested spans and events; exports them as JSONL."""

    __slots__ = ("spans", "_stack", "_next_id", "_epoch")

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; nest it under the current one by entering it."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            self._next_id,
            parent,
            name,
            {key: canonical_value(value) for key, value in attrs.items()},
        )
        self._next_id += 1
        return span

    def event(self, name: str, **attrs: object) -> None:
        """Attach an event to the innermost open span (or drop it)."""
        if self._stack:
            self._stack[-1].event(name, **attrs)

    def _enter(self, span: Span) -> None:
        self.spans.append(span)
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)

    def _elapsed_ms(self) -> float:
        return (time.perf_counter() - self._epoch) * 1000.0

    # -- inspection / export ----------------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name, in start order."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> Iterator[Span]:
        for candidate in self.spans:
            if candidate.parent_id == span.span_id:
                yield candidate

    def to_records(self) -> list[dict]:
        return [span.to_record(self._epoch) for span in self.spans]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per span; returns the span count."""
        records = self.to_records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)
