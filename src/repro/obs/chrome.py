"""Chrome ``trace_event`` export: one file, loadable in Perfetto.

The tracer (:mod:`repro.obs.tracer`) exports JSONL for offline scripting;
this module renders the same spans — plus the
:class:`~repro.obs.profile.PhaseProfiler`'s aggregated phase table — in the
Chrome Trace Event Format, so ``chrome://tracing`` / https://ui.perfetto.dev
can display a run visually.

Layout:

* **tid 1** carries the tracer's span tree as ``"X"`` (complete) events,
  one per span, with ``ts``/``dur`` in microseconds relative to the
  tracer's epoch. Chrome infers nesting on a thread from ts/dur
  containment, which matches span parentage exactly because spans enter
  and exit in stack order on one thread. Span events (point-in-time
  decisions) become ``"i"`` (instant) events, thread-scoped.
* **tid 2** carries the profiler's *aggregate* phases laid end-to-end as
  synthetic ``"X"`` events (the profiler keeps totals, not a timeline);
  each carries its real ``count`` and self-time in ``args``. The track
  reads as a proportional time breakdown, not a chronology.
* **tid 3** (opt-in, when an execution flight recorder is supplied)
  carries batch-level ``"i"`` instants, one per retained flight event,
  with ``ts`` taken from the event's sequence number — a deterministic
  ordinal axis, not wall-clock — and the event payload in ``args``.
* ``"M"`` metadata events name the process and the threads present.

Everything emitted is plain JSON-safe data: span attributes were already
canonicalised at record time (:func:`repro.obs.tracer.canonical_value`).
"""

from __future__ import annotations

import json

#: Process id for all emitted events (one optimizer run = one "process").
PID = 1

#: Thread carrying the tracer's span tree.
SPAN_TID = 1

#: Thread carrying the profiler's aggregate phase breakdown.
PHASE_TID = 2

#: Thread carrying the flight recorder's batch-level instants (opt-in:
#: only emitted when a recorder is passed to the export).
BATCH_TID = 3


def _metadata(kind: str, tid: int | None = None, **args) -> dict:
    # ``kind`` is the metadata event's own name ("process_name",
    # "thread_name"); the label it assigns travels in ``args["name"]``.
    return {
        "ph": "M",
        "ts": 0,
        "pid": PID,
        "tid": tid if tid is not None else 0,
        "name": kind,
        "args": args,
    }


def build_chrome_trace(tracer=None, profiler=None, flight=None) -> dict:
    """The Chrome trace document (``{"traceEvents": [...]}``) for a run.

    Any source may be ``None`` or a disabled null object; the export
    then simply omits that track. ``flight`` is an execution
    :class:`~repro.obs.flightrec.FlightRecorder` whose retained events
    become batch-level instants on their own thread.
    """
    events: list[dict] = [
        _metadata("process_name", name="repro run"),
        _metadata("thread_name", tid=SPAN_TID, name="tracer spans"),
        _metadata("thread_name", tid=PHASE_TID, name="profiler phases"),
    ]
    if flight is not None:
        events.append(
            _metadata("thread_name", tid=BATCH_TID, name="flight batches")
        )

    if tracer is not None and tracer.enabled:
        for record in tracer.to_records():
            start_us = record["start_ms"] * 1000.0
            events.append(
                {
                    "ph": "X",
                    "ts": start_us,
                    "dur": record["duration_ms"] * 1000.0,
                    "pid": PID,
                    "tid": SPAN_TID,
                    "name": record["span"],
                    "args": {
                        "span_id": record["id"],
                        "parent": record["parent"],
                        **record["attrs"],
                    },
                }
            )
            for point in record["events"]:
                args = {
                    key: value
                    for key, value in point.items()
                    if key not in ("name", "at_ms")
                }
                events.append(
                    {
                        "ph": "i",
                        "ts": point["at_ms"] * 1000.0,
                        "pid": PID,
                        "tid": SPAN_TID,
                        "name": point["name"],
                        "s": "t",
                        "args": args,
                    }
                )

    if profiler is not None and profiler.enabled:
        cursor = 0.0
        for name, stat in profiler.as_dict().items():
            duration_us = stat["seconds"] * 1e6
            events.append(
                {
                    "ph": "X",
                    "ts": cursor,
                    "dur": duration_us,
                    "pid": PID,
                    "tid": PHASE_TID,
                    "name": name,
                    "args": {
                        "count": stat["count"],
                        "self_seconds": stat["self_seconds"],
                        "aggregate": True,
                    },
                }
            )
            cursor += duration_us

    if flight is not None:
        for record in flight.events():
            args = {
                key: value
                for key, value in record.items()
                if key not in ("seq", "kind")
            }
            events.append(
                {
                    "ph": "i",
                    # The sequence number is the timeline: deterministic
                    # across runs, unlike any wall-clock reading.
                    "ts": float(record["seq"]),
                    "pid": PID,
                    "tid": BATCH_TID,
                    "name": record["kind"],
                    "s": "t",
                    "args": args,
                }
            )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(path: str, tracer=None, profiler=None, flight=None) -> int:
    """Write the Chrome trace JSON; returns the event count."""
    document = build_chrome_trace(
        tracer=tracer, profiler=profiler, flight=flight
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["traceEvents"])
