"""Phase profiling: where did the optimizer and executor spend their time?

The tracer (:mod:`repro.obs.tracer`) answers *why* a plan was chosen; the
:class:`PhaseProfiler` answers *where the wall-clock went* — per System R
enumeration level, per migration fixpoint round, per exhaustive join
order, per LDL DP step, per executor operator. Phases are named spans
accumulated by name, so a phase entered a thousand times costs one dict
slot, not a thousand records (unlike tracer spans, which are kept
individually).

Like the tracer, profiling must cost nothing when off: the default
:data:`NULL_PROFILER` is a :class:`NullProfiler` whose ``phase()`` returns
a shared, stateless no-op context manager. Hot loops additionally guard
with ``if profiler.enabled:`` where even name formatting would show up.

Nesting is handled with self-time attribution: a phase's ``seconds`` are
inclusive of nested phases, ``self_seconds`` excludes them, and
:meth:`PhaseProfiler.top_hotspots` ranks by self-time so a parent phase
does not crowd out the child doing the actual work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


class NullPhase:
    """The do-nothing phase span: a stateless, reusable context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullPhase":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: Shared instance handed out by :class:`NullProfiler` — never allocates.
NULL_PHASE = NullPhase()


class NullProfiler:
    """The default profiler: every operation is a no-op.

    ``enabled`` is a class attribute so hot paths can skip phase-name
    construction entirely (``if profiler.enabled: ...``).
    """

    __slots__ = ()

    enabled = False

    def phase(self, name: str) -> NullPhase:
        return NULL_PHASE

    def record(self, name: str, seconds: float) -> None:
        """Record nothing."""

    def as_dict(self) -> dict:
        return {}

    def top_hotspots(self, n: int = 10) -> list[dict]:
        return []


#: Shared default profiler instance.
NULL_PROFILER = NullProfiler()


@dataclass
class PhaseStat:
    """Accumulated timings for one phase name."""

    seconds: float = 0.0
    self_seconds: float = 0.0
    count: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "seconds": self.seconds,
            "self_seconds": self.self_seconds,
            "count": self.count,
        }


class _PhaseSpan:
    """One live ``with profiler.phase(name):`` entry."""

    __slots__ = ("profiler", "name", "started", "child_seconds")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name
        self.started = 0.0
        self.child_seconds = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self.profiler._stack.append(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self.started
        self.profiler._close(self, elapsed)
        return False


class PhaseProfiler(NullProfiler):
    """Accumulates perf_counter spans per phase name; nestable."""

    __slots__ = ("_stats", "_stack")

    enabled = True

    def __init__(self) -> None:
        self._stats: dict[str, PhaseStat] = {}
        self._stack: list[_PhaseSpan] = []

    def phase(self, name: str) -> _PhaseSpan:
        """A context manager timing one entry of the named phase."""
        return _PhaseSpan(self, name)

    def _close(self, span: _PhaseSpan, elapsed: float) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)
        stat = self._stats.get(span.name)
        if stat is None:
            stat = self._stats[span.name] = PhaseStat()
        stat.seconds += elapsed
        stat.self_seconds += max(0.0, elapsed - span.child_seconds)
        stat.count += 1
        if self._stack:
            self._stack[-1].child_seconds += elapsed

    def record(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into the named phase
        (e.g. per-operator actuals collected by EXPLAIN ANALYZE)."""
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = PhaseStat()
        stat.seconds += seconds
        stat.self_seconds += seconds
        stat.count += 1

    # -- inspection --------------------------------------------------------

    def stat(self, name: str) -> PhaseStat | None:
        return self._stats.get(name)

    def as_dict(self) -> dict:
        """``{phase name: {"seconds", "self_seconds", "count"}}`` in first-
        entered order."""
        return {name: stat.as_dict() for name, stat in self._stats.items()}

    def top_hotspots(self, n: int = 10) -> list[dict]:
        """The ``n`` phases with the largest self-time, descending."""
        ranked = sorted(
            self._stats.items(),
            key=lambda item: item[1].self_seconds,
            reverse=True,
        )
        return [
            {"phase": name, **stat.as_dict()} for name, stat in ranked[:n]
        ]
