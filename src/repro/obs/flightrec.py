"""Execution flight recorder: the engine's last moments, on disk.

Every observability layer so far either reports after a healthy finish
(artifacts, feedback, resource roll-ups) or streams while someone is
watching (``repro top``). When a query *dies* mid-flight — UDF-DNF under
the ``abort`` policy, budget exhaustion, an injected permanent fault —
all of it evaporates: the structured DNF says *that* the run died, not
what the engine was doing in its final batches.

The :class:`FlightRecorder` is a fixed-capacity ring buffer riding
:class:`~repro.exec.operators.RuntimeContext` as a None-guarded
``flight`` hook (the ``collector``/``monitor`` pattern — zero overhead
when detached). Operators append bounded events — one per emitted batch
on the vector path, power-of-two row milestones on the row path, plus
containment retry/quarantine events and monitor progress snapshots —
and old events fall off the front, so memory stays O(capacity) no
matter how long the run.

Determinism is the contract: events are timestamped with the
:class:`~repro.faults.clock.SimulatedClock` (never wall-clock), carry
cumulative charged cost (deterministic for a given seed), and serialise
through the artifact conventions (strict JSON, ``fmt_stat`` floats, no
ids or hashes) — so a ``FLIGHT_<workload>.json`` dump is byte-stable
across ``PYTHONHASHSEED`` and replays identically for a given fault
seed. ``repro postmortem <dump>`` renders the dump as a timeline.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.errors import ArtifactError
from repro.faults.clock import SimulatedClock
from repro.obs.artifacts import _json_safe
from repro.obs.quality import fmt_stat

#: Dump filename prefix, mirroring ``BENCH_`` / ``CHAOS_`` / ``STATS_``.
FLIGHT_PREFIX = "FLIGHT_"

#: Bumped on incompatible dump-shape changes.
FLIGHT_SCHEMA_VERSION = 1

#: Default ring-buffer capacity: enough to see several batches per
#: operator of a deep plan without unbounded growth.
DEFAULT_CAPACITY = 256

#: Quarantine entries kept verbatim in a dump (counts are complete).
MAX_DUMP_QUARANTINE = 5

#: Provenance events kept in a dump for the dying operator's context.
MAX_DUMP_PROVENANCE = 20


class FlightRecorder:
    """Fixed-capacity ring buffer of execution events.

    ``record`` is the only hot-path entry point: one dict append per
    event, oldest events dropped once ``capacity`` is reached. The
    executor marks the recorder *tripped* via :meth:`note_abort` when a
    run dies; callers check :attr:`tripped` to decide whether to
    serialize a dump.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: SimulatedClock | None = None,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.clock = clock if clock is not None else SimulatedClock()
        self._events: deque[dict] = deque(maxlen=self.capacity)
        #: Events ever recorded (including ones that fell off the ring).
        self.recorded = 0
        #: Structured abort reason; empty while the run is healthy.
        self.tripped = ""

    def record(self, kind: str, **fields) -> None:
        """Append one event. ``t`` is the simulated clock's reading at
        record time — virtual units, never wall-clock."""
        self.recorded += 1
        event = {"seq": self.recorded, "t": self.clock.now, "kind": kind}
        event.update(fields)
        self._events.append(event)

    def note_abort(self, reason: str) -> None:
        """Mark the run dead. Idempotent — the first reason wins (it is
        the one closest to the fault)."""
        if not self.tripped:
            self.tripped = reason
            self.record("query.abort", reason=reason)

    def events(self) -> list[dict]:
        """Retained events, oldest first."""
        return list(self._events)

    def last_operator(self) -> str:
        """The operator named by the most recent batch/row event — the
        one the engine was executing when it died."""
        for event in reversed(self._events):
            if event["kind"] in ("batch", "rows") and "op" in event:
                return event["op"]
        return ""


def flight_path(directory, workload: str, suffix: str = "") -> Path:
    """``<directory>/FLIGHT_<workload>[_<suffix>].json``."""
    name = f"{FLIGHT_PREFIX}{workload}"
    if suffix:
        name += f"_{suffix}"
    return Path(directory) / f"{name}.json"


def _clean_event(event: dict) -> dict:
    """Artifact form of one event: ``fmt_stat`` floats, strict JSON."""
    return {
        key: fmt_stat(value) if isinstance(value, float) else value
        for key, value in event.items()
    }


def build_flight_dump(
    recorder: FlightRecorder,
    *,
    workload: str,
    reason: str,
    executor: str = "row",
    strategy: str = "",
    seed: int | None = None,
    result=None,
    monitor=None,
    ledger=None,
    clamped_charges: int = 0,
) -> dict:
    """Assemble the strict-JSON dump document for one dead run.

    ``result`` is the :class:`~repro.exec.runtime.QueryResult` (supplies
    metrics and the quarantine report), ``monitor`` the run's
    :class:`~repro.obs.runtime_telemetry.RuntimeMonitor` (supplies the
    frozen progress state), ``ledger`` the *optimization-time*
    :class:`~repro.obs.provenance.ProvenanceLedger` (supplies placement
    provenance for the operator that died). All optional — a dump from a
    bare executor still carries the timeline.
    """
    died_in = recorder.last_operator()
    document: dict = {
        "schema_version": FLIGHT_SCHEMA_VERSION,
        "kind": "flight",
        "workload": workload,
        "executor": executor,
        "reason": reason,
        "capacity": recorder.capacity,
        "events_recorded": recorder.recorded,
        "last_operator": died_in,
        "clock": recorder.clock.snapshot(),
        "events": [_clean_event(event) for event in recorder.events()],
    }
    if strategy:
        document["strategy"] = strategy
    if seed is not None:
        document["seed"] = seed
    if monitor is not None:
        operators = []
        for progress in sorted(
            monitor.operators.values(), key=lambda item: item.index
        ):
            operators.append(
                {
                    "op": progress.index,
                    "label": progress.label,
                    "rows_out": progress.rows_out,
                    "estimated_rows": fmt_stat(
                        round(progress.estimated_rows, 6)
                    ),
                    "active": progress.active,
                    "done": progress.done,
                    "fraction": fmt_stat(round(progress.fraction, 6)),
                }
            )
        document["progress"] = {
            "state": monitor.state,
            "reason": monitor.reason,
            "fraction": fmt_stat(round(monitor.progress(), 6)),
            "operators": operators,
        }
    if result is not None:
        metrics = result.metrics or {}
        document["metrics"] = {
            key: fmt_stat(value) if isinstance(value, float) else value
            for key, value in sorted(metrics.items())
        }
        quarantine = result.quarantine
        if quarantine is not None:
            document["quarantine"] = {
                "quarantined": quarantine.quarantined,
                "retries": quarantine.retries,
                "recovered": quarantine.recovered,
                "failures": quarantine.failures,
                "backoff_units": fmt_stat(quarantine.backoff_units),
                "entries": [
                    entry.as_dict()
                    for entry in quarantine.entries[:MAX_DUMP_QUARANTINE]
                ],
            }
    document["clamped_charges"] = clamped_charges
    if ledger is not None and getattr(ledger, "enabled", False):
        # Placement provenance for the operator that died: the ledger
        # events whose payload mentions it (the table a scan reads, the
        # equijoin predicate a join matches on), newest last, bounded.
        # ``SeqScan(emp)`` → ``emp``; ``hash-join  [a.x = b.y]`` →
        # ``a.x = b.y``; no operator name → keep everything (bounded).
        needle = died_in
        if "[" in needle:
            needle = needle.split("[", 1)[1].rstrip("]")
        elif "(" in needle:
            needle = needle.split("(", 1)[1].rstrip(")")
        events = []
        for event in ledger.events:
            rendered = json.dumps(_json_safe(event.as_dict()))
            if not needle or needle in rendered:
                events.append(event.as_dict())
        document["provenance"] = [
            _json_safe(event) for event in events[-MAX_DUMP_PROVENANCE:]
        ]
    return _json_safe(document)


def write_flight_dump(path, document: dict) -> Path:
    """Write one dump (strict JSON, trailing newline) and return its path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return target


def load_flight_dump(path) -> dict:
    """Read one dump back, validating shape and schema version."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ArtifactError(
            f"cannot read flight dump {path}: {error}"
        ) from None
    except json.JSONDecodeError as error:
        raise ArtifactError(
            f"flight dump {path} is not valid JSON: {error}"
        ) from None
    if not isinstance(document, dict):
        raise ArtifactError(f"flight dump {path} is not a JSON object")
    if document.get("kind") != "flight":
        raise ArtifactError(
            f"{path} is not a flight dump (kind="
            f"{document.get('kind')!r})"
        )
    version = document.get("schema_version")
    if version != FLIGHT_SCHEMA_VERSION:
        raise ArtifactError(
            f"flight dump {path} has schema_version {version!r}; "
            f"this build reads {FLIGHT_SCHEMA_VERSION}"
        )
    if not isinstance(document.get("events"), list):
        raise ArtifactError(f"flight dump {path} has no events list")
    return document


def _fmt(value, places: int = 1) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{places}f}"
    return str(value)


def format_postmortem(document: dict, last: int = 12) -> str:
    """The ``repro postmortem`` report: what was the engine doing when
    it died?

    Renders the dump header, a timeline of the last ``last`` events
    (batches, row milestones, retries, quarantines, progress snapshots,
    the abort), the frozen progress state, quarantine/clamp context, and
    the provenance events for the operator that died. Pure function of
    the dump — deterministic, no wall-clock.
    """
    lines: list[str] = []
    workload = document.get("workload", "?")
    title = f"postmortem: {workload}"
    strategy = document.get("strategy")
    if strategy:
        title += f" [{strategy}]"
    seed = document.get("seed")
    if seed is not None:
        title += f" seed={seed}"
    lines.append(title)
    lines.append(
        f"executor={document.get('executor', 'row')}  "
        f"reason: {document.get('reason', '')}"
    )
    died_in = document.get("last_operator")
    if died_in:
        lines.append(f"died in: {died_in}")
    recorded = document.get("events_recorded", 0)
    events = document.get("events", [])
    dropped = max(0, recorded - len(events))
    lines.append(
        f"events: {recorded} recorded, {len(events)} retained"
        + (f" ({dropped} fell off the ring)" if dropped else "")
    )
    lines.append("")

    lines.append(f"timeline (last {min(last, len(events))} events):")
    for event in events[-last:]:
        kind = event.get("kind", "?")
        seq = event.get("seq", "?")
        t = _fmt(event.get("t"))
        detail = "  ".join(
            f"{key}={_fmt(value)}"
            for key, value in event.items()
            if key not in ("seq", "t", "kind")
        )
        lines.append(f"  #{seq:>5}  t={t:>8}  {kind:<15} {detail}")
    lines.append("")

    progress = document.get("progress")
    if isinstance(progress, dict):
        fraction = progress.get("fraction")
        percent = (
            f"{fraction * 100.0:.1f}%" if isinstance(fraction, float)
            else "n/a"
        )
        lines.append(
            f"frozen progress: {percent} "
            f"(state={progress.get('state', '?')})"
        )
        for operator in progress.get("operators", []):
            if not isinstance(operator, dict):
                continue
            frac = operator.get("fraction")
            done = (
                f"{frac * 100.0:5.1f}%" if isinstance(frac, float)
                else "    —"
            )
            active = "" if operator.get("active") else "  (never ran)"
            lines.append(
                f"  op{operator.get('op', '?')}: {done}  "
                f"rows_out={operator.get('rows_out', 0)}  "
                f"est={_fmt(operator.get('estimated_rows'), 0)}  "
                f"{operator.get('label', '')}{active}"
            )
        lines.append("")

    quarantine = document.get("quarantine")
    if isinstance(quarantine, dict):
        lines.append(
            f"quarantine: {quarantine.get('quarantined', 0)} tuples "
            f"({quarantine.get('failures', 0)} failures, "
            f"{quarantine.get('retries', 0)} retries, "
            f"{quarantine.get('recovered', 0)} recovered, "
            f"backoff {_fmt(quarantine.get('backoff_units'))} units)"
        )
        for entry in quarantine.get("entries", []):
            if isinstance(entry, dict):
                lines.append(
                    f"  {entry.get('action', '?')}: "
                    f"{entry.get('predicate', '?')} after "
                    f"{entry.get('attempts', '?')} attempts"
                )
        lines.append("")

    clamped = document.get("clamped_charges", 0)
    if clamped:
        lines.append(
            f"clamped charges: {clamped} non-finite/negative per-call "
            "costs clamped to 0"
        )
        lines.append("")

    provenance = document.get("provenance")
    if isinstance(provenance, list) and provenance:
        lines.append(
            f"provenance ({len(provenance)} placement events for the "
            "dying operator):"
        )
        for event in provenance:
            if not isinstance(event, dict):
                continue
            detail = "  ".join(
                f"{key}={_fmt(value)}"
                for key, value in event.items()
                if key not in ("seq", "kind")
            )
            lines.append(
                f"  #{event.get('seq', '?'):>4}  "
                f"{event.get('kind', '?'):<22} {detail}"
            )
        lines.append("")

    metrics = document.get("metrics")
    if isinstance(metrics, dict):
        parts = []
        for key in ("charged", "io_charged", "function_charged",
                    "function_calls"):
            if key in metrics:
                parts.append(f"{key}={_fmt(metrics[key])}")
        if parts:
            lines.append("meter at death: " + "  ".join(parts))
    return "\n".join(lines).rstrip()
