"""Live query telemetry: mid-flight progress, selectivity, and resources.

Every observability layer before this one (tracer, provenance ledger,
bench artifacts, statistics feedback) reports *after* a query finishes.
This module watches a plan while it runs: a :class:`RuntimeMonitor`
rides :class:`~repro.exec.operators.RuntimeContext` as a None-guarded
``monitor`` hook — the exact pattern of the feedback ``collector`` — so
the default path pays nothing, and an attached monitor sees every
operator pull and every predicate verdict as they happen.

Three concerns live here:

**Progress estimation** (driver-node style). At attach time each plan
node gets a work budget from the optimizer's own estimates: its
estimated output cardinality and its *self* cost (the node's estimated
cost minus its children's — the cost model's estimates are inclusive).
Per-operator percent-done is ``rows_out / estimated_rows``; whole-plan
percent-done is the self-cost-weighted average over operators that
actually ran. Estimates are refined online: once a predicate has enough
evaluations (:data:`REFINE_MIN_EVALS`), its observed selectivity
replaces the declared one in the node's cardinality estimate — the
paper's rank inputs, measured instead of assumed. Two guarantees hold
regardless of how wrong the estimates were:

* *monotone*: reported fractions never decrease (per-operator and
  whole-plan fractions are max-clamped, and a running operator is
  pinned below :data:`PROGRESS_RUNNING_CAP` until its
  ``StopIteration`` proves it finished);
* *terminal*: :meth:`RuntimeMonitor.complete` drives a successful run
  to exactly 1.0, and :meth:`RuntimeMonitor.freeze` pins an aborted
  run's progress at its last value with a structured reason — DNF runs
  report "stopped at 43% because <reason>", never a lie of 100%.

**Resource accounting.** :meth:`RuntimeMonitor.resource_report` rolls
one execution's meter, cache, quarantine, and simulated-clock state
into a :class:`QueryResourceReport` — deterministic (no wall-clock, no
ids) so it can embed in ``BENCH_*.json`` artifacts.

**Streaming histograms.** Per-predicate charged evaluation cost in
:class:`~repro.obs.histograms.StreamingHistogram` buckets (p50/p90/p99
of what each conjunct actually charges per tuple), and per-operator
pull latency for the export surface. Latency histograms are wall-clock
and therefore *never* serialised into gated artifacts — they surface
only through ``--metrics-export`` and ``repro top``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.feedback import predicate_fingerprint
from repro.obs.histograms import StreamingHistogram
from repro.obs.quality import fmt_stat
from repro.obs.tables import Column, Table, fmt_cell
from repro.plan.display import _node_label
from repro.plan.nodes import Plan, PlanNode

#: A running operator never reports more than this fraction done — only
#: its StopIteration can claim 1.0. Keeps progress honest (and monotone)
#: when an operator produces more rows than estimated.
PROGRESS_RUNNING_CAP = 0.99

#: Minimum evaluations before a predicate's observed selectivity is
#: trusted to refine its operator's cardinality estimate.
REFINE_MIN_EVALS = 32

#: Every node carries at least this much estimated work/cardinality so
#: weighted averages and ratios never divide by zero.
WORK_FLOOR = 1.0

#: Observed/declared selectivity ratios are clamped to this band before
#: refining an estimate — one absurd declaration cannot zero out or
#: explode a node's work budget.
REFINE_RATIO_BAND = (1.0 / 1024.0, 1024.0)

#: Default callback cadence for live refresh: every N operator events.
DEFAULT_REFRESH_EVERY = 4096


@dataclass
class OperatorProgress:
    """Progress state for one plan node.

    ``declared_rows`` is the optimizer's original cardinality estimate
    (never changed); ``estimated_rows`` is the live, refined one.
    ``active`` distinguishes nodes that actually ran as operators from
    registered-but-never-built ones (an index-nested-loop join probes
    its inner relation directly — the inner Scan node exists in the plan
    but no operator is ever constructed for it). Only active nodes
    contribute to whole-plan progress.
    """

    index: int
    label: str
    declared_rows: float
    estimated_rows: float
    work_units: float
    is_leaf: bool
    rows_out: int = 0
    active: bool = False
    done: bool = False
    fraction: float = 0.0


@dataclass
class PredicateTelemetry:
    """Live observed-vs-declared state for one predicate."""

    fingerprint: str
    predicate: str
    declared_selectivity: float
    declared_cost_per_call: float
    #: ``id()`` key of the plan node this predicate filters (0 when the
    #: predicate surfaced at runtime without an attach-time registration).
    node_key: int
    evaluated: int = 0
    passed: int = 0
    cost: StreamingHistogram = field(default_factory=StreamingHistogram)

    @property
    def observed_selectivity(self) -> float:
        if self.evaluated <= 0:
            return math.nan
        return self.passed / self.evaluated


@dataclass
class QueryResourceReport:
    """One execution's resource roll-up — deterministic, artifact-safe."""

    state: str
    reason: str
    progress: float
    rows_in: int
    rows_out: int
    udf_calls: int
    charged: float
    io_charged: float
    function_charged: float
    cpu_charged: float
    cache_hits: int
    cache_misses: int
    cache_entries: int
    quarantined: int
    retried: int
    recovered: int
    clock_now: float
    latency_units: float
    backoff_units: float

    def as_dict(self) -> dict:
        """Artifact form: key order fixed, floats via ``fmt_stat`` —
        byte-stable across interpreters (no wall-clock fields)."""
        return {
            "state": self.state,
            "reason": self.reason,
            "progress": fmt_stat(round(self.progress, 6)),
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "udf_calls": self.udf_calls,
            "charged": fmt_stat(self.charged),
            "io_charged": fmt_stat(self.io_charged),
            "function_charged": fmt_stat(self.function_charged),
            "cpu_charged": fmt_stat(self.cpu_charged),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": self.cache_entries,
            "quarantined": self.quarantined,
            "retried": self.retried,
            "recovered": self.recovered,
            "clock_now": fmt_stat(self.clock_now),
            "latency_units": fmt_stat(self.latency_units),
            "backoff_units": fmt_stat(self.backoff_units),
        }


class RuntimeMonitor:
    """The live telemetry sink one :class:`~repro.exec.runtime.Executor`
    execution reports into.

    Lifecycle: the executor calls :meth:`attach` with the plan and its
    cost model before building operators; each
    :class:`~repro.exec.operators.MonitoredOperator` calls
    :meth:`activate` at construction and :meth:`on_row`/:meth:`on_done`
    per pull; ``evaluate_predicate`` calls :meth:`observe_predicate`
    per verdict; the executor finishes with :meth:`complete` (success)
    or :meth:`freeze` (DNF). All callbacks are cheap tallies — no
    allocation on the per-row path beyond the first touch of a key.
    """

    def __init__(
        self,
        refresh_callback=None,
        refresh_every: int = DEFAULT_REFRESH_EVERY,
    ) -> None:
        self.refresh_callback = refresh_callback
        self.refresh_every = max(1, int(refresh_every))
        self.reset()

    def reset(self) -> None:
        #: Keyed by ``id(plan_node)``, plan pre-order.
        self.operators: dict[int, OperatorProgress] = {}
        #: Keyed by ``pred_id``.
        self.predicates: dict[int, PredicateTelemetry] = {}
        self._node_predicates: dict[int, list[int]] = {}
        #: Per-operator pull latency (wall-clock; export-only).
        self.latency: dict[int, StreamingHistogram] = {}
        #: Per-node selection-vector density totals from the vector
        #: executor's filter chains: ``node_key -> [rows_in, rows_out]``.
        self.filter_density: dict[int, list[int]] = {}
        self.state = "pending"
        self.reason = ""
        self._plan_fraction = 0.0
        self._events = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, plan: Plan | PlanNode, model) -> None:
        """Register every plan node with its estimated work budget.

        ``model`` is the executor's :class:`~repro.cost.model.CostModel`;
        a node the model cannot estimate (never the case for executable
        plans, but guarded anyway) gets the floor budget rather than
        poisoning the run.
        """
        node = plan.root if isinstance(plan, Plan) else plan
        self.reset()
        self.state = "running"
        order = list(node.walk())
        estimates: dict[int, tuple[float, float]] = {}
        for plan_node in order:
            try:
                estimate = model.estimate_plan(plan_node)
                rows = max(float(estimate.rows), WORK_FLOOR)
                cost = max(float(estimate.cost), 0.0)
            except Exception:
                rows, cost = WORK_FLOOR, 0.0
            estimates[id(plan_node)] = (rows, cost)
        for index, plan_node in enumerate(order):
            rows, cost = estimates[id(plan_node)]
            children = list(plan_node.children())
            self_cost = cost - sum(
                estimates[id(child)][1] for child in children
            )
            self.operators[id(plan_node)] = OperatorProgress(
                index=index,
                label=_node_label(plan_node),
                declared_rows=rows,
                estimated_rows=rows,
                work_units=max(self_cost, WORK_FLOOR),
                is_leaf=not children,
            )
            for predicate in _node_predicates(plan_node):
                self._register_predicate(predicate, id(plan_node))

    def _register_predicate(
        self, predicate, node_key: int
    ) -> PredicateTelemetry:
        telemetry = self.predicates.get(predicate.pred_id)
        if telemetry is None:
            telemetry = PredicateTelemetry(
                fingerprint=predicate_fingerprint(predicate),
                predicate=str(predicate),
                declared_selectivity=float(predicate.selectivity),
                declared_cost_per_call=float(predicate.cost_per_tuple),
                node_key=node_key,
            )
            self.predicates[predicate.pred_id] = telemetry
            if node_key:
                self._node_predicates.setdefault(node_key, []).append(
                    predicate.pred_id
                )
        return telemetry

    def freeze(self, reason: str) -> None:
        """Pin progress at its current value with a structured reason.

        Called by the executor when a run dies (budget DNF, UDF abort).
        Idempotent; later :meth:`complete`/:meth:`on_row` calls cannot
        thaw a frozen run.
        """
        if self.state == "aborted":
            return
        self.progress()  # fold the final per-operator state in first
        self.state = "aborted"
        self.reason = reason

    def complete(self) -> None:
        """Drive a successful run to exactly 100%."""
        if self.state == "aborted":
            return
        for operator in self.operators.values():
            if operator.active:
                operator.fraction = 1.0
                operator.done = True
        self.state = "completed"
        self._plan_fraction = 1.0

    # -- operator callbacks --------------------------------------------------

    def activate(self, key: int) -> None:
        """A MonitoredOperator for this node was constructed — it counts."""
        operator = self.operators.get(key)
        if operator is None:
            # A node that was not registered at attach time (defensive;
            # keeps a hand-built operator tree from crashing the monitor).
            operator = OperatorProgress(
                index=len(self.operators),
                label=f"op#{len(self.operators)}",
                declared_rows=WORK_FLOOR,
                estimated_rows=WORK_FLOOR,
                work_units=WORK_FLOOR,
                is_leaf=False,
            )
            self.operators[key] = operator
        operator.active = True

    def on_row(self, key: int, seconds: float) -> None:
        operator = self.operators.get(key)
        if operator is None or self.state == "aborted":
            return
        operator.rows_out += 1
        if operator.rows_out > operator.estimated_rows:
            # The estimate was too low; grow it so the capped fraction
            # keeps inching up instead of flatlining.
            operator.estimated_rows = (
                operator.rows_out / PROGRESS_RUNNING_CAP
            )
        fraction = min(
            operator.rows_out / operator.estimated_rows,
            PROGRESS_RUNNING_CAP,
        )
        if fraction > operator.fraction:
            operator.fraction = fraction
        histogram = self.latency.get(key)
        if histogram is None:
            histogram = self.latency[key] = StreamingHistogram()
        histogram.observe(seconds)
        self._events += 1
        if (
            self.refresh_callback is not None
            and self._events % self.refresh_every == 0
        ):
            self.refresh_callback(self)

    def on_rows(self, key: int, count: int, seconds: float) -> None:
        """Bulk row report: one batch of ``count`` rows pulled in
        ``seconds`` — the vector executor's equivalent of ``count``
        :meth:`on_row` calls. Progress stays monotone (same max-clamp
        and estimate-growth rules); the latency histogram records one
        batch-level sample, which is fine because pull-latency
        histograms are export-only and never gated."""
        operator = self.operators.get(key)
        if operator is None or self.state == "aborted" or count <= 0:
            return
        operator.rows_out += count
        if operator.rows_out > operator.estimated_rows:
            operator.estimated_rows = (
                operator.rows_out / PROGRESS_RUNNING_CAP
            )
        fraction = min(
            operator.rows_out / operator.estimated_rows,
            PROGRESS_RUNNING_CAP,
        )
        if fraction > operator.fraction:
            operator.fraction = fraction
        histogram = self.latency.get(key)
        if histogram is None:
            histogram = self.latency[key] = StreamingHistogram()
        histogram.observe(seconds)
        self._events += 1
        if (
            self.refresh_callback is not None
            and self._events % self.refresh_every == 0
        ):
            self.refresh_callback(self)

    def on_done(self, key: int, seconds: float) -> None:
        operator = self.operators.get(key)
        if operator is None or self.state == "aborted":
            return
        operator.done = True
        operator.fraction = 1.0
        histogram = self.latency.get(key)
        if histogram is None:
            histogram = self.latency[key] = StreamingHistogram()
        histogram.observe(seconds)
        if self.refresh_callback is not None:
            self.refresh_callback(self)

    # -- predicate callback --------------------------------------------------

    def observe_predicate(self, predicate, passed: bool, charged: float) -> None:
        telemetry = self.predicates.get(predicate.pred_id)
        if telemetry is None:
            telemetry = self._register_predicate(predicate, 0)
        telemetry.evaluated += 1
        if passed:
            telemetry.passed += 1
        telemetry.cost.observe(charged)
        # Refine the owning node's estimate at power-of-two milestones —
        # O(log n) refinements per predicate, never per row.
        count = telemetry.evaluated
        if (
            telemetry.node_key
            and count >= REFINE_MIN_EVALS
            and (count & (count - 1)) == 0
        ):
            self._refine(telemetry.node_key)

    def observe_predicate_batch(
        self, predicate, evaluated: int, passed: int, charges
    ) -> None:
        """Bulk verdict report from the vector executor: ``evaluated``
        evaluations of which ``passed`` were true, with ``charges`` the
        per-evaluation charged costs for the histogram (may be shorter
        than ``evaluated`` — e.g. empty for a hash-matched free equijoin,
        where every charge is zero). Refines the owning node's estimate
        once per batch instead of at power-of-two milestones."""
        if evaluated <= 0:
            return
        telemetry = self.predicates.get(predicate.pred_id)
        if telemetry is None:
            telemetry = self._register_predicate(predicate, 0)
        telemetry.evaluated += evaluated
        telemetry.passed += passed
        observe = telemetry.cost.observe
        for charged in charges:
            observe(charged)
        if (
            telemetry.node_key
            and telemetry.evaluated >= REFINE_MIN_EVALS
        ):
            self._refine(telemetry.node_key)

    def on_filter_batch(
        self,
        node_key: int,
        rows_in: int,
        rows_out: int,
        declared_selectivity: float,
    ) -> None:
        """Per-batch selection-vector density report from the vector
        executor's filter chains: ``rows_in`` rows entered the chain and
        ``rows_out`` survived it, against a declared (optimizer) chain
        selectivity of ``declared_selectivity``.

        Unlike the per-predicate refinement in :meth:`_refine` — a
        product of independent ratios — the joint chain density sees
        predicate correlation, so it refines the node's cardinality
        estimate *every batch* instead of waiting for per-predicate
        power-of-two milestones. Same clamps as :meth:`_refine`: the
        ratio band keeps one absurd declaration from zeroing or
        exploding the work budget, and ``rows_out``/``WORK_FLOOR``
        floors keep the fraction monotone.
        """
        if rows_in <= 0 or self.state == "aborted":
            return
        totals = self.filter_density.get(node_key)
        if totals is None:
            totals = self.filter_density[node_key] = [0, 0]
        totals[0] += rows_in
        totals[1] += rows_out
        if totals[0] < REFINE_MIN_EVALS:
            return
        operator = self.operators.get(node_key)
        if operator is None:
            return
        declared = declared_selectivity
        if math.isnan(declared) or not declared > 0.0:
            return
        observed = totals[1] / totals[0]
        low, high = REFINE_RATIO_BAND
        ratio = min(max(observed / declared, low), high)
        operator.estimated_rows = max(
            operator.declared_rows * ratio,
            float(operator.rows_out),
            WORK_FLOOR,
        )

    def _refine(self, node_key: int) -> None:
        """Replace declared selectivities with observed ones in the
        node's cardinality estimate. Shrinking estimates push fractions
        up (monotone by construction); growing ones are absorbed by the
        per-operator max-clamp."""
        operator = self.operators.get(node_key)
        if operator is None:
            return
        low, high = REFINE_RATIO_BAND
        ratio = 1.0
        for pred_id in self._node_predicates.get(node_key, ()):
            telemetry = self.predicates[pred_id]
            if telemetry.evaluated < REFINE_MIN_EVALS:
                continue
            declared = telemetry.declared_selectivity
            observed = telemetry.observed_selectivity
            if (
                math.isnan(observed)
                or math.isnan(declared)
                or not declared > 0.0
            ):
                continue
            ratio *= min(max(observed / declared, low), high)
        operator.estimated_rows = max(
            operator.declared_rows * min(max(ratio, low), high),
            float(operator.rows_out),
            WORK_FLOOR,
        )

    # -- read side -----------------------------------------------------------

    def progress(self) -> float:
        """Whole-plan fraction done in [0, 1]; monotone non-decreasing;
        frozen at its abort-time value for DNF runs."""
        if self.state == "aborted":
            return self._plan_fraction
        active = [
            operator
            for operator in self.operators.values()
            if operator.active
        ]
        if self.state == "completed":
            value = 1.0
        elif not active:
            value = 0.0
        else:
            total = sum(operator.work_units for operator in active)
            value = (
                sum(
                    operator.work_units * operator.fraction
                    for operator in active
                )
                / total
            )
        if value > self._plan_fraction:
            self._plan_fraction = value
        return self._plan_fraction

    def resource_report(self, result, clock=None) -> QueryResourceReport:
        """Roll one finished execution into a :class:`QueryResourceReport`.

        ``result`` is the executor's :class:`~repro.exec.runtime.QueryResult`;
        ``clock`` the execution's :class:`~repro.faults.clock.SimulatedClock`
        (``None`` reports zero elapsed units).
        """
        metrics = result.metrics or {}
        cache_stats = result.cache_stats
        quarantine = result.quarantine
        rows_in = sum(
            operator.rows_out
            for operator in self.operators.values()
            if operator.active and operator.is_leaf
        )
        return QueryResourceReport(
            state=self.state,
            reason=self.reason or result.error,
            progress=self.progress(),
            rows_in=rows_in,
            rows_out=result.row_count,
            udf_calls=int(metrics.get("function_calls", 0)),
            charged=result.charged,
            io_charged=float(metrics.get("io_charged", 0.0)),
            function_charged=float(metrics.get("function_charged", 0.0)),
            cpu_charged=float(metrics.get("cpu_charged", 0.0)),
            cache_hits=cache_stats.hits if cache_stats is not None else 0,
            cache_misses=(
                cache_stats.misses if cache_stats is not None else 0
            ),
            cache_entries=result.cache_entries,
            quarantined=(
                quarantine.quarantined if quarantine is not None else 0
            ),
            retried=quarantine.retries if quarantine is not None else 0,
            recovered=(
                quarantine.recovered if quarantine is not None else 0
            ),
            clock_now=clock.now if clock is not None else 0.0,
            latency_units=(
                clock.latency_units if clock is not None else 0.0
            ),
            backoff_units=(
                clock.backoff_units if clock is not None else 0.0
            ),
        )


def _node_predicates(plan_node: PlanNode) -> list:
    """The predicates evaluated *at* this node: its filter chain plus,
    for a join, its primary join predicate."""
    predicates = list(getattr(plan_node, "filters", ()) or ())
    primary = getattr(plan_node, "primary", None)
    if primary is not None:
        predicates.append(primary)
    return predicates


def format_top(
    monitor: RuntimeMonitor,
    title: str = "",
    resources: QueryResourceReport | None = None,
) -> str:
    """The ``repro top`` view: one snapshot of a monitor as text.

    Deterministic for deterministic monitor state — operators in plan
    pre-order, predicates in first-registration order, no wall-clock
    fields (pull-latency histograms are export-only).
    """
    lines: list[str] = []
    percent = monitor.progress() * 100.0
    status = f"state={monitor.state}  progress {percent:5.1f}%"
    if monitor.reason:
        status += f"  reason: {monitor.reason}"
    lines.append(f"top: {title}  {status}" if title else f"top: {status}")
    lines.append("")

    operators = Table(
        [
            Column("op", 3),
            Column("operator", 28, align="left", gap=2),
            Column("est.rows", 10),
            Column("rows.out", 9),
            Column("done%", 7),
            Column("work", 12),
        ]
    )
    for operator in sorted(
        monitor.operators.values(), key=lambda item: item.index
    ):
        if operator.active:
            done = f"{operator.fraction * 100.0:.1f}"
        else:
            done = "—"
        operators.row(
            operator.index,
            operator.label[:28],
            f"{operator.estimated_rows:.0f}",
            operator.rows_out,
            done,
            f"{operator.work_units:.1f}",
        )
    lines.append(operators.render())
    lines.append("")

    if monitor.predicates:
        predicates = Table(
            [
                Column("predicate", 28, align="left"),
                Column("decl.sel", 9),
                Column("obs.sel", 9),
                Column("evals", 7),
                Column("cost.p50", 9),
                Column("cost.p90", 9),
                Column("cost.p99", 9),
            ]
        )
        for telemetry in monitor.predicates.values():
            quantiles = telemetry.cost.quantiles()
            predicates.row(
                telemetry.predicate[:28],
                fmt_cell(telemetry.declared_selectivity),
                fmt_cell(telemetry.observed_selectivity),
                telemetry.evaluated,
                fmt_cell(quantiles["p50"], 2),
                fmt_cell(quantiles["p90"], 2),
                fmt_cell(quantiles["p99"], 2),
            )
        lines.append(predicates.render())
        lines.append("")

    if resources is not None:
        lines.append(
            f"resources: rows {resources.rows_in} -> "
            f"{resources.rows_out}  udf calls {resources.udf_calls}  "
            f"charged {resources.charged:.1f} "
            f"(io {resources.io_charged:.1f}, "
            f"fn {resources.function_charged:.1f}, "
            f"cpu {resources.cpu_charged:.1f})"
        )
        lines.append(
            f"cache: {resources.cache_hits} hits / "
            f"{resources.cache_misses} misses / "
            f"{resources.cache_entries} entries   "
            f"quarantine: {resources.quarantined} "
            f"(retried {resources.retried}, "
            f"recovered {resources.recovered})"
        )
        lines.append(
            f"clock: now {resources.clock_now:.1f}  "
            f"latency {resources.latency_units:.1f}  "
            f"backoff {resources.backoff_units:.1f}"
        )
    return "\n".join(lines).rstrip()
