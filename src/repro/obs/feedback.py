"""Query-driven statistics feedback: the versioned observed-stats store.

EXPLAIN ANALYZE (PR 1) measures per-operator truth and throws it away
after every run; ROADMAP item 3 wants it *persisted* as the input to
adaptive re-optimization. This module is that persistence layer:

* :class:`FeedbackCollector` — a per-execution sink the executor feeds
  one record per predicate evaluation (did it pass, what did it charge).
  The default executor path carries no collector at all, so collection
  is zero-overhead when disabled, like ``NULL_LEDGER``;
* :class:`PredicateObservation` — one predicate's tallies folded into
  observed selectivity (``passed / evaluated``) and observed per-call
  cost (``charged_cost / charged_calls``), next to what the catalog
  *declared*, keyed by a content-addressed predicate fingerprint;
* :class:`StatsFeedbackStore` — epoch-versioned snapshots serialised as
  ``STATS_<workload>.json`` (schema-versioned like ``BENCH_*.json``),
  each epoch carrying its observations, per-operator row counts, and a
  log-scale selectivity q-error histogram;
* :func:`format_stats_epoch` / :func:`format_drift_report` — the
  ``repro stats`` and ``repro drift`` CLI views.

Collection never changes plans: observations only become planner inputs
through the explicit :meth:`repro.catalog.catalog.Catalog.apply_feedback`
injection path, and the fingerprint-neutrality guard in CI proves every
baseline workload plans byte-identically with collection on and
injection off.

Documents are deterministic by construction — observations are keyed by
content fingerprint and sorted, floats are serialised via
:func:`~repro.obs.quality.fmt_stat` (non-finite values as their
``float()``-parseable names), and nothing derives from ``id()``,
``hash()``, or wall-clock — so stores are byte-stable across runs and
``PYTHONHASHSEED`` variation.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ArtifactError
from repro.obs.quality import (
    DRIFT_QERROR_THRESHOLD,
    detect_drift,
    fmt_stat,
    qerror,
    qerror_histogram,
)
from repro.obs.tables import Column, Table, fmt_cell

#: Bump when the store document shape changes incompatibly. Independent
#: of the ``BENCH_*`` schema version — the two artifact families evolve
#: separately.
STATS_SCHEMA_VERSION = 1

#: Store file naming convention: ``STATS_<workload>.json``.
STATS_PREFIX = "STATS_"

#: Per-operator fields persisted into an epoch. Deliberately excludes
#: ``wall_seconds`` — stores must stay deterministic, and wall-clock is
#: the one instrumented actual that never is.
_OPERATOR_FIELDS = (
    "node",
    "rows_out",
    "charged",
    "io_charged",
    "function_charged",
    "cache_hits",
)


def predicate_fingerprint(predicate) -> str:
    """A stable content hash identifying one predicate across runs.

    Hashes the canonical expression text plus the sorted table set —
    everything that defines *which* predicate this is, and nothing
    process-local (``pred_id`` is an itertools counter, ``id()`` is an
    address; neither survives a restart). sha256, 16 hex digits, for the
    same reasons as :func:`~repro.obs.artifacts.plan_fingerprint`.
    """
    text = f"{predicate}|{','.join(sorted(predicate.tables))}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _parse_stat(value) -> float:
    """Read back a :func:`fmt_stat`-serialised float (``"nan"`` parses)."""
    if value is None:
        return float("nan")
    return float(value)


@dataclass
class PredicateObservation:
    """Observed vs declared statistics for one predicate.

    Counter semantics: ``evaluated`` counts predicate evaluations that
    returned a verdict, ``passed`` the true verdicts; ``charged_calls``
    counts evaluations that charged any function cost (cache hits charge
    nothing and are excluded — the observed per-call cost is the cost of
    *work*, not of amortisation), ``charged_cost`` their total charge.
    """

    fingerprint: str
    predicate: str
    tables: tuple[str, ...]
    functions: tuple[str, ...]
    declared_selectivity: float
    declared_cost_per_call: float
    evaluated: int = 0
    passed: int = 0
    charged_calls: int = 0
    charged_cost: float = 0.0

    @property
    def is_expensive(self) -> bool:
        """Does the predicate invoke UDFs (the paper's expensive class)?"""
        return bool(self.functions)

    @property
    def observed_selectivity(self) -> float:
        if self.evaluated <= 0:
            return float("nan")
        return self.passed / self.evaluated

    @property
    def observed_cost_per_call(self) -> float:
        if self.charged_calls <= 0:
            return float("nan")
        return self.charged_cost / self.charged_calls

    @property
    def selectivity_qerror(self) -> float:
        return qerror(self.declared_selectivity, self.observed_selectivity)

    @property
    def cost_qerror(self) -> float:
        return qerror(
            self.declared_cost_per_call, self.observed_cost_per_call
        )

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "predicate": self.predicate,
            "tables": sorted(self.tables),
            "functions": sorted(self.functions),
            "declared": {
                "selectivity": fmt_stat(self.declared_selectivity),
                "cost_per_call": fmt_stat(self.declared_cost_per_call),
            },
            "observed": {
                "evaluated": self.evaluated,
                "passed": self.passed,
                "charged_calls": self.charged_calls,
                "charged_cost": fmt_stat(self.charged_cost),
                "selectivity": fmt_stat(self.observed_selectivity),
                "cost_per_call": fmt_stat(self.observed_cost_per_call),
            },
            "qerror": {
                "selectivity": fmt_stat(self.selectivity_qerror),
                "cost_per_call": fmt_stat(self.cost_qerror),
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PredicateObservation":
        declared = data.get("declared", {})
        observed = data.get("observed", {})
        return cls(
            fingerprint=str(data.get("fingerprint", "")),
            predicate=str(data.get("predicate", "")),
            tables=tuple(data.get("tables", ())),
            functions=tuple(data.get("functions", ())),
            declared_selectivity=_parse_stat(declared.get("selectivity")),
            declared_cost_per_call=_parse_stat(
                declared.get("cost_per_call")
            ),
            evaluated=int(observed.get("evaluated", 0)),
            passed=int(observed.get("passed", 0)),
            charged_calls=int(observed.get("charged_calls", 0)),
            charged_cost=_parse_stat(observed.get("charged_cost", 0.0)),
        )


@dataclass
class _Tally:
    """Raw per-``pred_id`` counters while an execution is in flight."""

    predicate: object
    evaluated: int = 0
    passed: int = 0
    charged_calls: int = 0
    charged_cost: float = 0.0


class FeedbackCollector:
    """Per-execution sink for predicate-evaluation observations.

    The executor's ``evaluate_predicate`` chokepoint calls
    :meth:`observe` once per evaluation with the verdict and the function
    cost charged by that evaluation (zero on cache hits and on contained
    failed attempts). Tallies are kept per ``pred_id`` during the run and
    folded into fingerprint-keyed :class:`PredicateObservation` objects
    at harvest, merging structurally identical conjuncts.
    """

    __slots__ = ("_tallies",)

    enabled = True

    def __init__(self) -> None:
        self._tallies: dict[int, _Tally] = {}

    def observe(self, predicate, passed: bool, charged: float) -> None:
        tally = self._tallies.get(predicate.pred_id)
        if tally is None:
            tally = _Tally(predicate)
            self._tallies[predicate.pred_id] = tally
        tally.evaluated += 1
        if passed:
            tally.passed += 1
        if charged > 0:
            tally.charged_calls += 1
            tally.charged_cost += charged

    def observe_batch(
        self,
        predicate,
        evaluated: int,
        passed: int,
        charged_calls: int,
        charged_cost: float,
    ) -> None:
        """Fold one batch of verdicts in at once — the vector executor's
        bulk equivalent of ``evaluated`` :meth:`observe` calls, with
        identical tally totals."""
        tally = self._tallies.get(predicate.pred_id)
        if tally is None:
            tally = _Tally(predicate)
            self._tallies[predicate.pred_id] = tally
        tally.evaluated += evaluated
        tally.passed += passed
        tally.charged_calls += charged_calls
        tally.charged_cost += charged_cost

    def observations(self) -> list[PredicateObservation]:
        """Fold tallies into observations, sorted by fingerprint."""
        merged: dict[str, PredicateObservation] = {}
        for _, tally in sorted(self._tallies.items()):
            predicate = tally.predicate
            fingerprint = predicate_fingerprint(predicate)
            entry = merged.get(fingerprint)
            if entry is None:
                entry = PredicateObservation(
                    fingerprint=fingerprint,
                    predicate=str(predicate),
                    tables=tuple(sorted(predicate.tables)),
                    functions=tuple(
                        sorted(set(predicate.expr.function_names()))
                    ),
                    declared_selectivity=predicate.selectivity,
                    declared_cost_per_call=predicate.cost_per_tuple,
                )
                merged[fingerprint] = entry
            entry.evaluated += tally.evaluated
            entry.passed += tally.passed
            entry.charged_calls += tally.charged_calls
            entry.charged_cost += tally.charged_cost
        return [merged[key] for key in sorted(merged)]


def stats_path(directory, workload: str) -> Path:
    """``<directory>/STATS_<workload>.json``."""
    return Path(directory) / f"{STATS_PREFIX}{workload}.json"


class StatsFeedbackStore:
    """Epoch-versioned observed statistics for one workload.

    Epochs number from 1 and only ever append — the store is a history,
    so ``repro drift`` can compare any two epochs and ROADMAP item 3's
    adaptive replanner gets the invalidation timeline it needs.
    """

    def __init__(self, workload: str, epochs: list[dict] | None = None):
        self.workload = workload
        self.epochs: list[dict] = list(epochs or [])

    def epoch_numbers(self) -> list[int]:
        """Numbers of the *end-of-run* epochs (sequence 0).

        Mid-query snapshots recorded by an adaptive re-plan share their
        run's number under ``sequence >= 1`` and are deliberately
        excluded: the drift CLI and ``apply_feedback`` compare complete
        runs, and a half-query's observations must never masquerade as
        one. Stores written before sequences existed have no
        ``sequence`` key and read as 0.
        """
        return [
            int(epoch.get("epoch", 0))
            for epoch in self.epochs
            if int(epoch.get("sequence", 0)) == 0
        ]

    def epoch(self, number: int, sequence: int = 0) -> dict:
        for epoch in self.epochs:
            if (
                int(epoch.get("epoch", 0)) == number
                and int(epoch.get("sequence", 0)) == sequence
            ):
                return epoch
        suffix = f" (sequence {sequence})" if sequence else ""
        raise ArtifactError(
            f"no epoch {number}{suffix} recorded for workload "
            f"{self.workload!r}; recorded epochs: "
            f"{self.epoch_numbers() or 'none'}"
        )

    def mid_query_epochs(self, number: int) -> list[dict]:
        """The mid-query re-plan snapshots of one run, sequence order."""
        return sorted(
            (
                epoch
                for epoch in self.epochs
                if int(epoch.get("epoch", 0)) == number
                and int(epoch.get("sequence", 0)) > 0
            ),
            key=lambda epoch: int(epoch.get("sequence", 0)),
        )

    def latest_epoch(self) -> dict:
        for epoch in reversed(self.epochs):
            if int(epoch.get("sequence", 0)) == 0:
                return epoch
        raise ArtifactError(
            f"no epochs recorded at end-of-run for workload "
            f"{self.workload!r} (mid-query re-plan snapshots do not "
            f"count); run `repro stats {self.workload}` to record one"
        )

    def observations_for(
        self, number: int | None = None
    ) -> list[PredicateObservation]:
        """The epoch's observations (``None`` = latest), fingerprint order.

        This is the duck-typed surface ``Catalog.apply_feedback``
        consumes — the catalog package stays free of obs imports.
        """
        epoch = (
            self.latest_epoch() if number is None else self.epoch(number)
        )
        observations = epoch.get("observations", {})
        return [
            PredicateObservation.from_dict(observations[key])
            for key in sorted(observations)
        ]

    def record_epoch(
        self,
        observations,
        *,
        strategy: str,
        scale: int,
        seed: int,
        caching: bool = False,
        operators=None,
        sequence: int = 0,
    ) -> int:
        """Append one epoch; returns its number (1-based, monotonic).

        ``sequence`` versions the epoch key *within* a run: 0 (the
        default) is the end-of-run epoch, ``n >= 1`` the ``n``-th
        mid-query re-plan snapshot. Mid-query epochs pre-allocate the
        forthcoming run's number — ``epoch_numbers()`` only counts
        sequence-0 epochs, so a run that records snapshots at sequences
        1..k and then its end-of-run epoch groups all k+1 documents
        under one number instead of colliding with (or shadowing) it.
        """
        number = max(self.epoch_numbers(), default=0) + 1
        epoch = {
            "epoch": number,
            "sequence": int(sequence),
            "strategy": strategy,
            "scale": scale,
            "seed": seed,
            "caching": caching,
            "observations": {
                obs.fingerprint: obs.as_dict() for obs in observations
            },
            "selectivity_qerror_histogram": qerror_histogram(
                [
                    obs.selectivity_qerror
                    for obs in observations
                    if obs.evaluated > 0
                ]
            ),
        }
        if operators is not None:
            epoch["operators"] = [
                {
                    key: entry[key]
                    for key in _OPERATOR_FIELDS
                    if key in entry
                }
                for entry in operators
            ]
        self.epochs.append(epoch)
        return number

    def as_dict(self) -> dict:
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "kind": "stats-feedback",
            "workload": self.workload,
            "epochs": list(self.epochs),
        }

    def save(self, path) -> Path:
        """Write the store; ``path`` may be a directory or a ``*.json``."""
        target = Path(path)
        if target.suffix != ".json":
            target = stats_path(target, self.workload)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(
                self.as_dict(),
                handle,
                indent=2,
                sort_keys=True,
                allow_nan=False,
            )
            handle.write("\n")
        return target

    @classmethod
    def load(cls, path) -> "StatsFeedbackStore":
        """Read a store back, validating the schema version."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise ArtifactError(
                f"cannot read stats store {path}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ArtifactError(
                f"stats store {path} is not valid JSON: {error}"
            ) from None
        if not isinstance(document, dict):
            raise ArtifactError(f"stats store {path} is not a JSON object")
        version = document.get("schema_version")
        if version != STATS_SCHEMA_VERSION:
            raise ArtifactError(
                f"stats store {path} has schema_version {version!r}; "
                f"this build reads version {STATS_SCHEMA_VERSION}"
            )
        epochs = document.get("epochs")
        if not isinstance(epochs, list):
            raise ArtifactError(
                f"stats store {path} has no 'epochs' list"
            )
        return cls(
            workload=str(document.get("workload", "")), epochs=epochs
        )

    @classmethod
    def load_or_create(cls, path, workload: str) -> "StatsFeedbackStore":
        """Load the store at ``path`` if present, else a fresh one."""
        target = Path(path)
        if target.suffix != ".json":
            target = stats_path(target, workload)
        if target.exists():
            return cls.load(target)
        return cls(workload)


# -- CLI renderers ------------------------------------------------------------


def _stats_table() -> Table:
    """The shared stats/drift column layout (both views align)."""
    return Table(
        [
            Column("predicate", 30, align="left"),
            Column("", 9),  # set per view below
            Column("", 9),
            Column("q-err", 7),
            Column("", 10),
            Column("", 10),
            Column("q-err", 7),
            Column("drift", gap=2),
        ]
    )


def _build_stats_table(titles: tuple[str, str, str, str]) -> Table:
    table = _stats_table()
    sel_a, sel_b, cost_a, cost_b = titles
    table.columns[1] = Column(sel_a, 9)
    table.columns[2] = Column(sel_b, 9)
    table.columns[4] = Column(cost_a, 10)
    table.columns[5] = Column(cost_b, 10)
    return table


def format_stats_epoch(
    workload: str,
    epoch: dict,
    threshold: float = DRIFT_QERROR_THRESHOLD,
) -> str:
    """The ``repro stats`` table: declared vs observed, per expensive
    predicate, with q-errors and drift flags."""
    observations = [
        PredicateObservation.from_dict(entry)
        for _, entry in sorted(epoch.get("observations", {}).items())
    ]
    findings = detect_drift(observations, threshold=threshold)
    flagged: dict[str, list[str]] = {}
    for finding in findings:
        flagged.setdefault(finding.subject, []).append(finding.field)
    sequence = int(epoch.get("sequence", 0))
    tag = f" replan {sequence}" if sequence else ""
    lines = [
        f"== stats: {workload} epoch {epoch.get('epoch')}{tag} "
        f"(strategy {epoch.get('strategy')}, "
        f"scale {epoch.get('scale')}, seed {epoch.get('seed')}"
        + (", caching" if epoch.get("caching") else "")
        + ")"
    ]
    table = _build_stats_table(
        ("decl.sel", "obs.sel", "decl.cost", "obs.cost")
    )
    expensive = [obs for obs in observations if obs.is_expensive]
    for obs in expensive:
        fields = flagged.get(obs.predicate)
        drift = f"DRIFT({','.join(sorted(fields))})" if fields else "-"
        table.row(
            obs.predicate[:30],
            fmt_cell(obs.declared_selectivity),
            fmt_cell(obs.observed_selectivity),
            fmt_cell(obs.selectivity_qerror, 2),
            fmt_cell(obs.declared_cost_per_call, 1),
            fmt_cell(obs.observed_cost_per_call, 1),
            fmt_cell(obs.cost_qerror, 2),
            drift,
        )
    if not expensive:
        table.raw("(no expensive predicates observed)")
    cheap = len(observations) - len(expensive)
    if cheap:
        table.raw(
            f"({cheap} cheap predicate(s) tracked but not shown — "
            "zero-cost conjuncts have no per-call cost to drift)"
        )
    lines.append(table.render())
    lines.append(
        f"drift: {len(findings)} flag(s) at q-error threshold "
        f"{threshold:g}"
    )
    for finding in findings:
        lines.append(f"  * {finding.describe()}")
    return "\n".join(lines)


def format_drift_report(
    workload: str,
    epoch_a: dict,
    epoch_b: dict,
    threshold: float = DRIFT_QERROR_THRESHOLD,
) -> str:
    """The ``repro drift`` view: observed stats, epoch A vs epoch B.

    Epoch-over-epoch comparison of *observed* values — "the data moved"
    — as opposed to ``repro stats``, which compares observed against
    *declared* ("the catalog lies"). A predicate drifts when the q-error
    between its two observed selectivities (or per-call costs) exceeds
    ``threshold``, or when it was observed in only one epoch.
    """
    a_number = epoch_a.get("epoch")
    b_number = epoch_b.get("epoch")
    obs_a = {
        key: PredicateObservation.from_dict(entry)
        for key, entry in epoch_a.get("observations", {}).items()
    }
    obs_b = {
        key: PredicateObservation.from_dict(entry)
        for key, entry in epoch_b.get("observations", {}).items()
    }
    lines = [
        f"== drift: {workload} epoch {a_number} "
        f"(strategy {epoch_a.get('strategy')}) -> epoch {b_number} "
        f"(strategy {epoch_b.get('strategy')})"
    ]
    table = _build_stats_table(("sel.A", "sel.B", "cost.A", "cost.B"))
    drifted = 0
    for key in sorted(set(obs_a) | set(obs_b)):
        a, b = obs_a.get(key), obs_b.get(key)
        if a is None or b is None:
            present = a or b
            assert present is not None
            side = "B" if a is None else "A"
            drifted += 1
            table.row(
                present.predicate[:30],
                fmt_cell(
                    a.observed_selectivity if a else float("nan")
                ),
                fmt_cell(
                    b.observed_selectivity if b else float("nan")
                ),
                "—",
                "—",
                "—",
                "—",
                f"DRIFT(only in epoch {side})",
            )
            continue
        sel_q = qerror(a.observed_selectivity, b.observed_selectivity)
        cost_q = qerror(
            a.observed_cost_per_call, b.observed_cost_per_call
        )
        fields = []
        if sel_q > threshold:
            fields.append("selectivity")
        if cost_q > threshold:
            fields.append("cost_per_call")
        if fields:
            drifted += 1
        drift = f"DRIFT({','.join(fields)})" if fields else "-"
        table.row(
            b.predicate[:30],
            fmt_cell(a.observed_selectivity),
            fmt_cell(b.observed_selectivity),
            fmt_cell(sel_q, 2),
            fmt_cell(a.observed_cost_per_call, 1),
            fmt_cell(b.observed_cost_per_call, 1),
            fmt_cell(cost_q, 2),
            drift,
        )
    lines.append(table.render())
    lines.append(
        f"drift: {drifted} predicate(s) moved beyond q-error "
        f"{threshold:g} between epochs {a_number} and {b_number}"
    )
    return "\n".join(lines)
