"""Placement provenance: a typed ledger of every placement decision.

The tracer (:mod:`repro.obs.tracer`) records *timings* around decisions;
this module records the *decisions themselves* — each PushDown+ rank
ordering, each PullUp hoist, each PullRank rank-vs-join-rank comparison
(with the per-input selectivity and differential cost behind both ranks),
each System R unpruneable retention, each Predicate Migration stream pass
and predicate move (round, stream, before/after slot), each Exhaustive
branch-and-bound cut and incumbent improvement, and each LDL virtual-join
application. The ledger attaches to
:class:`~repro.optimizer.optimizer.OptimizedPlan` and is serialised into
``BENCH_<workload>.json`` artifacts, so "which decision changed?" is
answerable offline next to "which plan changed?".

Like the tracer and profiler, provenance must cost nothing when off: the
default :data:`NULL_LEDGER` is a :class:`NullLedger` whose ``record()``
is a no-op, and hot paths guard with ``if ledger.enabled:`` so even
argument packing is skipped. Recording must also never change the chosen
plan — the ledger only observes; plan fingerprints gate this in CI.

Event data is canonicalised to deterministic JSON-safe values at record
time (:func:`repro.obs.tracer.canonical_value`), so ledgers are
byte-stable across runs and under ``PYTHONHASHSEED`` variation.

On top of the ledger sit the ``repro why`` building blocks:
:func:`skeleton_signature` (the filter-independent join-tree identity
events are attributed by), :func:`why_report` (per-expensive-predicate
decision chains), and :func:`counterfactual_report` (re-cost the plan
with a predicate moved one join up/down and report the checked delta).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import CostModel
from repro.errors import PlanError
from repro.expr.predicates import Predicate
from repro.obs.tracer import canonical_value
from repro.plan.nodes import Join, Plan, PlanNode, Scan
from repro.plan.streams import spine_of

#: Every ledger event kind, mapped to the paper concept it records.
#: ``record()`` rejects anything else, so consumers can rely on the
#: vocabulary (EXPERIMENTS.md maps these to the paper's terminology).
EVENT_KINDS = {
    "scan.rank_order": (
        "selections rank-ordered on a base scan (Section 4.1 rank sort)"
    ),
    "scan.disjunction_order": (
        "a disjunctive conjunct's boolean tree cost-ordered for "
        "short-circuit evaluation (the rank sort generalised to AND/OR "
        "trees per Kim/Ileri/Madden)"
    ),
    "pullup.hoist": (
        "expensive selection hoisted above a join by PullUp (Section 4.2)"
    ),
    "pullrank.compare": (
        "predicate rank vs. per-input join rank test at one join "
        "(Section 4.3), with the selectivity/cost behind both ranks"
    ),
    "systemr.unpruneable": (
        "subplan retained despite higher cost because it still holds an "
        "unpulled expensive predicate (Section 4.4 System R modification)"
    ),
    "migration.pass": (
        "one series-parallel fixpoint pass over a candidate's stream "
        "(Section 4.4 / [MS79])"
    ),
    "migration.move": (
        "one predicate moved between stream slots by a migration pass"
    ),
    "migration.select_best": (
        "the migrated candidate chosen as the final plan"
    ),
    "exhaustive.order_pruned": (
        "join-order prefix cut by the branch-and-bound lower bound"
    ),
    "exhaustive.combos": (
        "placement interleavings evaluated/pruned for one join order"
    ),
    "exhaustive.new_best": (
        "a new incumbent plan, with its movable-predicate slot assignment"
    ),
    "ldl.virtual_join": (
        "expensive predicate applied as a virtual-relation join step "
        "(Section 3.1 LDL rewrite)"
    ),
    "stats.clamp": (
        "a non-finite or out-of-range predicate statistic was clamped by "
        "the cost-model guardrails before any rank was computed"
    ),
    "stats.drift": (
        "an observed or declared statistic disagrees with the catalog "
        "declaration beyond the drift q-error threshold"
    ),
    "planner.degraded": (
        "a placement strategy failed or timed out and the ladder fell "
        "back to a cheaper strategy"
    ),
    "plan.replan": (
        "a mid-query drift trigger: the adaptive controller applied, "
        "refused (budget / oscillation / no improvement), or converged "
        "on a re-planned predicate placement for the unexecuted suffix"
    ),
}


@dataclass(frozen=True)
class LedgerEvent:
    """One recorded placement decision, in ledger order."""

    seq: int
    kind: str
    data: dict

    def as_dict(self) -> dict:
        return {"seq": self.seq, "kind": self.kind, **self.data}


class NullLedger:
    """The default ledger: every operation is a no-op.

    ``enabled`` is a class attribute so hot paths can skip event argument
    construction entirely (``if ledger.enabled: ledger.record(...)``).
    """

    __slots__ = ()

    enabled = False
    events: tuple = ()

    def record(self, kind: str, **data: object) -> None:
        """Record nothing."""

    def events_of(self, kind: str) -> list:
        return []

    def event_counts(self) -> dict[str, int]:
        return {}

    def summary(self) -> dict:
        return {"event_counts": {}, "events": []}


#: Shared default ledger instance.
NULL_LEDGER = NullLedger()


class ProvenanceLedger(NullLedger):
    """An ordered, typed record of placement decisions."""

    __slots__ = ("events",)

    enabled = True

    def __init__(self) -> None:
        self.events: list[LedgerEvent] = []

    def record(self, kind: str, **data: object) -> None:
        """Append one event; ``kind`` must be a known :data:`EVENT_KINDS`
        entry and ``data`` is canonicalised to JSON-safe values here, at
        record time, so export can never fail later."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown ledger event kind {kind!r}; "
                f"choose one of {sorted(EVENT_KINDS)}"
            )
        self.events.append(
            LedgerEvent(
                seq=len(self.events),
                kind=kind,
                data={
                    key: canonical_value(value)
                    for key, value in data.items()
                },
            )
        )

    def events_of(self, kind: str) -> list[LedgerEvent]:
        return [event for event in self.events if event.kind == kind]

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def summary(self) -> dict:
        """The artifact form: stable counts plus the full ordered list."""
        return {
            "event_counts": self.event_counts(),
            "events": [event.as_dict() for event in self.events],
        }


# -- attribution: matching events to the final plan --------------------------


def skeleton_signature(node: PlanNode) -> str:
    """The filter-independent identity of a (sub)plan: join-tree shape,
    join methods, primary join predicates, and scan access paths.

    Policies and migration move only filter lists, never the skeleton, so
    a signature recorded when a join was constructed still identifies the
    same join in the final plan — that is how ``repro why`` attributes
    enumeration-time decisions to final-plan nodes.
    """
    if isinstance(node, Scan):
        if node.index_attr is not None:
            return f"{node.table}[ix:{node.index_attr}]"
        return node.table
    assert isinstance(node, Join)
    return (
        f"({skeleton_signature(node.outer)} "
        f"{node.method.value}[{node.primary}] "
        f"{skeleton_signature(node.inner)})"
    )


def plan_join_signatures(root: PlanNode) -> dict[str, Join]:
    """Signature -> join node for every join in the final plan."""
    return {
        skeleton_signature(node): node
        for node in root.walk()
        if isinstance(node, Join)
    }


def expensive_targets(root: PlanNode) -> list[tuple[Predicate, str]]:
    """The ``repro why`` subjects: every expensive predicate in the plan,
    paired with ``"filter"`` (movable) or ``"primary"`` (join predicate
    driving a join — its position is fixed by the join order)."""
    targets: list[tuple[Predicate, str]] = []
    seen: set[int] = set()
    for node in root.walk():
        for predicate in node.filters:
            if predicate.is_expensive and id(predicate) not in seen:
                seen.add(id(predicate))
                targets.append((predicate, "filter"))
        if isinstance(node, Join) and node.primary.is_expensive:
            if id(node.primary) not in seen:
                seen.add(id(node.primary))
                targets.append((node.primary, "primary"))
    return targets


# -- counterfactuals ---------------------------------------------------------


@dataclass(frozen=True)
class Counterfactual:
    """One re-costed alternative placement of a single predicate."""

    direction: str  # "down" (one join earlier) or "up" (one join later)
    from_slot: int
    to_slot: int
    base_cost: float
    alt_cost: float

    @property
    def delta(self) -> float:
        """``alt - base``: positive means the current placement wins."""
        return self.alt_cost - self.base_cost


@dataclass
class CounterfactualReport:
    """Everything ``repro why`` prints about one predicate's alternatives."""

    base_cost: float
    current_slot: int | None = None
    entry_slot: int | None = None
    top_slot: int | None = None
    moves: list[Counterfactual] | None = None
    note: str = ""


def counterfactual_report(
    plan: Plan | PlanNode, predicate: Predicate, model: CostModel
) -> CounterfactualReport:
    """Re-cost ``plan`` with ``predicate`` moved one join down and one join
    up from its current slot, leaving the input plan untouched.

    Every cost — including the baseline — comes from
    ``model.estimate_plan`` on a fresh clone, so the reported deltas are
    independently checkable numbers, not differences of cached estimates.
    Non-left-deep plans and join primaries get a ``note`` instead.
    """
    root = plan.root if isinstance(plan, Plan) else plan
    base_clone = root.clone()
    base_cost = model.estimate_plan(base_clone).cost
    owner = root.find_filter(predicate)
    if owner is None:
        return CounterfactualReport(
            base_cost=base_cost,
            note=(
                "predicate is a join primary (or not in this plan): its "
                "position is fixed by the join order, so there is no "
                "one-slot counterfactual"
            ),
        )
    try:
        spine = spine_of(root)
    except PlanError:
        return CounterfactualReport(
            base_cost=base_cost,
            note=(
                "plan is bushy; one-slot spine counterfactuals are only "
                "defined for left-deep plans"
            ),
        )
    entry = spine.entry_slot(predicate)
    top = len(spine.joins)
    current = entry
    for spine_join in spine.joins:
        if owner is spine_join.join:
            current = spine_join.slot
            break
    moves: list[Counterfactual] = []
    for target in (current - 1, current + 1):
        if target < entry or target > top:
            continue
        clone = root.clone()
        # Clones share Predicate objects with the original, so the spine
        # of the clone accepts the same predicate as a placement key.
        spine_of(clone).apply_placement({predicate: target})
        alt_cost = model.estimate_plan(clone).cost
        moves.append(
            Counterfactual(
                direction="up" if target > current else "down",
                from_slot=current,
                to_slot=target,
                base_cost=base_cost,
                alt_cost=alt_cost,
            )
        )
    return CounterfactualReport(
        base_cost=base_cost,
        current_slot=current,
        entry_slot=entry,
        top_slot=top,
        moves=moves,
    )


# -- the `repro why` report --------------------------------------------------


def _fmt(value) -> str:
    """Compact numeric formatting for report lines."""
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4g}"
    return str(value)


def _dedupe(events: list[LedgerEvent]) -> list[tuple[LedgerEvent, int]]:
    """Collapse repeated identical decisions (same kind and data) into
    (first event, occurrence count) pairs, preserving first-seen order."""
    grouped: dict[str, tuple[LedgerEvent, int]] = {}
    for event in events:
        key = f"{event.kind}|{sorted(event.data.items())}"
        if key in grouped:
            first, count = grouped[key]
            grouped[key] = (first, count + 1)
        else:
            grouped[key] = (event, 1)
    return list(grouped.values())


def _compare_line(data: dict, times: int) -> str:
    verdict = (
        "pulled above the join"
        if data.get("pulled")
        else "declined (stays below)"
    )
    line = (
        f"rank comparison at {data.get('join')} "
        f"[{data.get('side')} input]: predicate rank "
        f"{_fmt(data.get('predicate_rank'))} vs join rank "
        f"{_fmt(data.get('join_rank'))} -> {verdict}\n"
        f"      (join rank = (selectivity "
        f"{_fmt(data.get('input_selectivity'))} - 1) / cost "
        f"{_fmt(data.get('input_cost'))} per input tuple; stream "
        f"{_fmt(data.get('outer_rows'))} x {_fmt(data.get('inner_rows'))} "
        f"rows)"
    )
    if times > 1:
        line += f"  [seen {times}x during enumeration]"
    return line


def _predicate_chain(
    predicate: Predicate,
    ledger,
    final_signatures: dict[str, Join],
    strategy: str,
) -> list[str]:
    """Human-readable ledger lines that explain one predicate's position."""
    name = str(predicate)
    lines: list[str] = []

    for event in ledger.events_of("scan.rank_order"):
        order = event.data.get("order", [])
        if name in order:
            position = order.index(name)
            lines.append(
                f"rank-ordered on scan({event.data.get('table')}): "
                f"position {position + 1} of {len(order)} "
                f"(ranks {', '.join(_fmt(r) for r in event.data.get('ranks', []))})"
            )
            break  # one template per table; later repeats are identical

    hoists = [
        event
        for event in ledger.events_of("pullup.hoist")
        if event.data.get("predicate") == name
        and event.data.get("join_signature") in final_signatures
    ]
    for event, times in _dedupe(hoists):
        suffix = f"  [seen {times}x]" if times > 1 else ""
        lines.append(
            f"hoisted above {event.data.get('join')} by PullUp "
            f"(every expensive selection rises){suffix}"
        )

    compares = [
        event
        for event in ledger.events_of("pullrank.compare")
        if event.data.get("predicate") == name
        and event.data.get("join_signature") in final_signatures
    ]
    for event, times in _dedupe(compares):
        lines.append(_compare_line(event.data, times))

    select_best = ledger.events_of("migration.select_best")
    winner = select_best[-1].data.get("candidate") if select_best else None
    if winner is not None:
        moves = [
            event
            for event in ledger.events_of("migration.move")
            if event.data.get("predicate") == name
            and event.data.get("candidate") == winner
        ]
        passes = [
            event
            for event in ledger.events_of("migration.pass")
            if event.data.get("candidate") == winner
        ]
        for event in moves:
            lines.append(
                f"migration pass {event.data.get('round')} moved it "
                f"slot {event.data.get('from_slot')} -> "
                f"{event.data.get('to_slot')} on stream "
                f"{event.data.get('stream')}"
            )
        if passes and not moves:
            lines.append(
                f"migration ran {len(passes)} fixpoint pass(es) on the "
                "winning candidate without moving it: the enumeration "
                "placement was already series-parallel optimal"
            )
        if select_best:
            data = select_best[-1].data
            lines.append(
                f"winning candidate: #{data.get('candidate')} "
                f"(estimated cost {_fmt(data.get('cost'))})"
            )

    best_events = ledger.events_of("exhaustive.new_best")
    if best_events:
        data = best_events[-1].data
        slot = (data.get("placements") or {}).get(name)
        if slot is not None:
            lines.append(
                f"exhaustive search settled it at slot {slot} "
                f"(incumbent #{len(best_events)}, cost "
                f"{_fmt(data.get('cost'))}, after "
                f"{_fmt(data.get('interleaving'))} interleavings)"
            )

    virtual = [
        event
        for event in ledger.events_of("ldl.virtual_join")
        if event.data.get("predicate") == name
    ]
    if virtual:
        placements = sorted(
            {tuple(event.data.get("tables", ())) for event in virtual}
        )
        lines.append(
            f"LDL applied it as a virtual-relation join step at "
            f"{len(placements)} distinct point(s) in the DP: "
            + "; ".join("after joining {" + ", ".join(t) + "}"
                        for t in placements)
        )

    if not lines:
        lines.append(
            f"no recorded decision mentions it under strategy "
            f"{strategy!r} (it stayed at its rank-sorted entry position)"
        )
    return lines


def _counterfactual_lines(report: CounterfactualReport) -> list[str]:
    if report.note:
        return [f"counterfactual: {report.note}"]
    lines: list[str] = []
    assert report.moves is not None
    if not report.moves:
        lines.append(
            f"counterfactual: slot {report.current_slot} is the only "
            f"legal slot (entry {report.entry_slot}, top "
            f"{report.top_slot}); nothing to move"
        )
    for move in report.moves:
        if move.delta >= 0:
            verdict = (
                f"current placement wins by {move.delta:.1f} units"
            )
        else:
            verdict = (
                f"the move would IMPROVE the estimate by "
                f"{-move.delta:.1f} units (this strategy is heuristic)"
            )
        lines.append(
            f"counterfactual {move.direction} (slot {move.from_slot} -> "
            f"{move.to_slot}): plan re-costs to {move.alt_cost:,.1f} "
            f"vs {move.base_cost:,.1f} -> {verdict}"
        )
    return lines


def why_report(
    optimized,
    model: CostModel,
    predicate: str | None = None,
) -> str:
    """Render the ``repro why`` view for one :class:`OptimizedPlan`.

    For each expensive predicate in the final plan (optionally filtered
    by the ``predicate`` substring): where it ended up, the chain of
    ledger events that fixed it there, and one-slot counterfactual
    re-costings with checked deltas.
    """
    root = optimized.plan.root
    ledger = getattr(optimized, "provenance", None) or NULL_LEDGER
    targets = expensive_targets(root)
    if predicate:
        targets = [
            (p, role) for p, role in targets if predicate in str(p)
        ]
    lines: list[str] = [
        f"== why: {optimized.query_name or 'query'} under "
        f"{optimized.strategy} (estimated cost "
        f"{optimized.estimated_cost:,.1f})"
    ]
    if not targets:
        subject = (
            f"no expensive predicate matching {predicate!r}"
            if predicate
            else "no expensive predicates"
        )
        lines.append(f"{subject} in this plan; nothing to explain.")
        return "\n".join(lines)
    if not ledger.enabled or not ledger.events:
        lines.append(
            "(no provenance ledger was recorded for this plan; "
            "decision chains below will be empty)"
        )
    final_signatures = plan_join_signatures(root)
    for target, role in targets:
        owner = root.find_filter(target)
        lines.append("")
        lines.append(
            f"-- predicate {target}  (rank {_fmt(target.rank)}, "
            f"selectivity {_fmt(target.selectivity)}, cost "
            f"{_fmt(target.cost_per_tuple)}/tuple)"
        )
        if role == "primary":
            lines.append(
                "  placed as a join primary: it drives a join, so its "
                "position follows the join order, not a placement rule"
            )
        elif owner is not None:
            where = (
                f"scan({owner.table})" if isinstance(owner, Scan)
                else f"{owner.method.value}-join [{owner.primary}]"
            )
            lines.append(f"  final position: on {where}")
        for line in _predicate_chain(
            target, ledger, final_signatures, optimized.strategy
        ):
            lines.append(f"  * {line}")
        if role == "filter":
            report = counterfactual_report(optimized.plan, target, model)
            for line in _counterfactual_lines(report):
                lines.append(f"  > {line}")
    return "\n".join(lines)
