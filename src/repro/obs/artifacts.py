"""Persistent run artifacts: one JSON document per benchmark run.

PR 1's tracer and metrics die with the process; this module makes a bench
run durable so two commits can be compared. One artifact captures:

* the **environment** — python, platform, ``REPRO_BENCH_SCALE`` /
  ``REPRO_BENCH_SEED``, and the git sha the run was taken at;
* one record per strategy — estimated cost, charged cost, rows, UDF
  calls, planning time, estimation error, the planner's decision
  ``notes``, per-operator actuals (when instrumented), and a **plan
  fingerprint**: a stable hash of the plan's canonical rendering from
  :mod:`repro.plan.display`, so "did the chosen plan change?" is one
  string comparison;
* the :class:`~repro.obs.profile.PhaseProfiler`'s phase table and
  ``top_hotspots`` report, when a profiler was active.

Artifacts are schema-versioned (``schema_version``) and written as strict
JSON: non-finite floats (``nan`` planning times, ``inf`` budgets) are
serialised as ``null`` so any JSON tool can read them back. File naming
follows ``BENCH_<workload>.json``.

:func:`diff_artifacts` is the regression gate: it compares two artifacts
strategy-by-strategy and reports plan-fingerprint changes, charged-cost
and planning-time deltas beyond thresholds, estimation-error widening,
and completed→DNF flips. Charged costs are deterministic simulated units
(given scale and seed), so CI can gate on them across machines; planning
times are wall-clock and only gate when a threshold is explicitly set.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ArtifactError
from repro.plan.display import plan_tree

#: Bump when the artifact document shape changes incompatibly.
SCHEMA_VERSION = 1

#: Artifact file naming convention: ``BENCH_<workload>.json``.
ARTIFACT_PREFIX = "BENCH_"


# -- plan fingerprints -------------------------------------------------------


def canonical_plan_form(plan) -> str:
    """The canonical text form a plan is fingerprinted over.

    :func:`repro.plan.display.plan_tree` already renders everything that
    defines a plan's identity — join-tree shape, join methods, primary
    join predicates, access paths, and per-node filter placement in
    stream order — deterministically, with no ids or addresses.
    """
    return plan_tree(plan)


def plan_fingerprint(plan) -> str:
    """A short stable hash of the plan's canonical form.

    Uses sha256 (not ``hash()``) so the fingerprint survives process
    restarts and ``PYTHONHASHSEED`` randomisation; 16 hex digits keep
    artifacts readable while leaving collisions astronomically unlikely.
    """
    text = canonical_plan_form(plan)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# -- building and (de)serialising artifacts ----------------------------------


def _json_safe(value):
    """Recursively coerce to strict-JSON-serialisable values.

    Non-finite floats become ``None`` (strict JSON has no ``NaN``);
    unknown objects fall back to ``str`` so a stray Predicate in a notes
    dict cannot make a whole run unrecordable.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return str(value)


def _git_sha() -> str:
    """The current commit, or ``unknown`` outside a git checkout."""
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def default_environment(scale: int, seed: int) -> dict:
    """The reproducibility context recorded with every artifact."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "scale": scale,
        "seed": seed,
        "git_sha": _git_sha(),
    }


def strategy_record(outcome) -> dict:
    """One :class:`~repro.bench.harness.StrategyOutcome` as artifact data."""
    record = {
        "strategy": outcome.strategy,
        "fingerprint": (
            plan_fingerprint(outcome.plan)
            if outcome.plan is not None
            else None
        ),
        "estimated_cost": outcome.estimated_cost,
        "charged": outcome.charged,
        "rows": outcome.rows,
        "function_calls": outcome.function_calls,
        "planning_seconds": outcome.planning_seconds,
        "estimation_error": outcome.estimation_error,
        "relative": outcome.relative,
        "completed": outcome.completed,
        "executed": outcome.executed,
        "error": outcome.error,
        "notes": dict(outcome.notes),
    }
    operators = outcome.extras.get("operators")
    if operators is not None:
        record["operators"] = operators
    ledger = outcome.extras.get("ledger")
    if ledger is not None:
        record["ledger"] = ledger
    quality = outcome.extras.get("quality")
    if quality is not None:
        record["quality"] = quality
    resources = outcome.extras.get("resources")
    if resources is not None:
        # The live monitor's QueryResourceReport roll-up — deterministic
        # (simulated clock, no wall-time) and never gated by bench-diff,
        # like the other optional observability sections.
        record["resources"] = resources
    return record


def build_run_artifact(
    workload: str,
    outcomes,
    *,
    scale: int,
    seed: int,
    profiler=None,
    environment: dict | None = None,
) -> dict:
    """Assemble (but do not write) one run-artifact document."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "workload": workload,
        "environment": (
            environment
            if environment is not None
            else default_environment(scale=scale, seed=seed)
        ),
        "strategies": {
            outcome.strategy: strategy_record(outcome)
            for outcome in outcomes
        },
    }
    if profiler is not None and profiler.enabled:
        document["profile"] = profiler.as_dict()
        document["hotspots"] = profiler.top_hotspots(10)
    return _json_safe(document)


def artifact_path(directory, workload: str) -> Path:
    """``<directory>/BENCH_<workload>.json``."""
    return Path(directory) / f"{ARTIFACT_PREFIX}{workload}.json"


def record_run_artifact(
    path,
    workload: str,
    outcomes,
    *,
    scale: int,
    seed: int,
    profiler=None,
    environment: dict | None = None,
) -> Path:
    """Write one run artifact and return where it landed.

    ``path`` may be a directory (the file is named by convention) or an
    explicit ``*.json`` file path.
    """
    target = Path(path)
    if target.suffix != ".json":
        target = artifact_path(target, workload)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = build_run_artifact(
        workload,
        outcomes,
        scale=scale,
        seed=seed,
        profiler=profiler,
        environment=environment,
    )
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return target


def load_run_artifact(path) -> dict:
    """Read one artifact back, validating the schema version."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise ArtifactError(f"cannot read artifact {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ArtifactError(
            f"artifact {path} is not valid JSON: {error}"
        ) from None
    if not isinstance(document, dict):
        raise ArtifactError(f"artifact {path} is not a JSON object")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact {path} has schema_version {version!r}; "
            f"this build reads version {SCHEMA_VERSION}"
        )
    return document


def collect_artifacts(path) -> dict[str, Path]:
    """Map workload key -> artifact file under ``path``.

    A directory yields every ``BENCH_*.json`` inside it; a file yields
    the single entry keyed by its conventional name (or file stem).
    """
    source = Path(path)
    if source.is_dir():
        found = sorted(source.glob(f"{ARTIFACT_PREFIX}*.json"))
        return {
            entry.stem[len(ARTIFACT_PREFIX):]: entry for entry in found
        }
    key = source.stem
    if key.startswith(ARTIFACT_PREFIX):
        key = key[len(ARTIFACT_PREFIX):]
    return {key: source}


class ArtifactRecorder:
    """Records artifacts into a directory — or nothing, when unconfigured.

    The null-object default keeps call sites unconditional:
    ``recorder.record("q1", outcomes)`` is a no-op unless the user asked
    for ``--record DIR``.
    """

    def __init__(self, directory=None, *, scale: int = 0, seed: int = 0):
        self.directory = Path(directory) if directory else None
        self.scale = scale
        self.seed = seed

    @property
    def enabled(self) -> bool:
        return self.directory is not None

    def record(self, workload: str, outcomes, profiler=None) -> Path | None:
        if self.directory is None:
            return None
        return record_run_artifact(
            self.directory,
            workload,
            outcomes,
            scale=self.scale,
            seed=self.seed,
            profiler=profiler,
        )


# -- diffing two artifacts ---------------------------------------------------


@dataclass
class Finding:
    """One observation from an artifact diff.

    ``severity`` is ``"regression"`` (gates: nonzero exit) or ``"note"``
    (reported, never gates).
    """

    severity: str
    workload: str
    strategy: str
    kind: str
    message: str

    def __str__(self) -> str:
        tag = "REGRESSION" if self.severity == "regression" else "note"
        return (
            f"[{tag}] {self.workload}/{self.strategy}: "
            f"{self.kind}: {self.message}"
        )


def _as_float(value) -> float:
    """Artifact numbers round-trip ``nan`` as ``null``; read both back."""
    if value is None:
        return float("nan")
    if isinstance(value, (int, float)):
        return float(value)
    return float("nan")


def _as_dict(value) -> dict:
    """A dict, or empty when the field is absent or malformed.

    Older artifacts simply lack newer optional sections (pre-provenance
    baselines have no ``ledger``); hand-edited ones may carry the wrong
    shape. Either way the diff must keep working on the fields both
    sides do share, not crash.
    """
    return value if isinstance(value, dict) else {}


def _ledger_counts(record: dict) -> dict | None:
    """A strategy record's ledger event counts, or ``None`` when the
    artifact predates provenance recording (or the section is malformed
    — treated the same: no decision-level data to compare)."""
    counts = _as_dict(record.get("ledger")).get("event_counts")
    if isinstance(counts, dict):
        return counts
    return None


def _quality(record: dict) -> dict | None:
    """A strategy record's estimation-quality section, or ``None`` when
    the artifact predates feedback collection (or the section is
    malformed — same treatment: nothing to compare)."""
    quality = record.get("quality")
    if isinstance(quality, dict):
        return quality
    return None


def _resources(record: dict) -> dict | None:
    """A strategy record's resource roll-up, or ``None`` when the
    artifact predates live telemetry (or the section is malformed —
    same treatment: nothing to compare)."""
    resources = record.get("resources")
    if isinstance(resources, dict):
        return resources
    return None


#: Resource-report keys worth a per-key drift note. Deliberately the
#: deterministic counters only — ``reason``/``state`` drift is already
#: covered by the gated error/dnf checks, and clock fields restate
#: ``backoff_units``.
_RESOURCE_NOTE_KEYS = (
    "rows_in",
    "rows_out",
    "udf_calls",
    "cache_hits",
    "cache_misses",
    "quarantined",
    "retried",
)


def _batch_totals(record: dict) -> dict[str, int] | None:
    """Per-operator batch counts from a record's vector batch actuals,
    or ``None`` when the record carries none (every row-path record —
    batch actuals are embedded only by instrumented vector runs)."""
    operators = record.get("operators")
    if not isinstance(operators, list):
        return None
    totals: dict[str, int] = {}
    found = False
    for entry in operators:
        if not isinstance(entry, dict):
            continue
        batch = entry.get("batch")
        if not isinstance(batch, dict):
            continue
        found = True
        label = str(entry.get("node", "?"))
        totals[label] = int(batch.get("batches", 0) or 0)
    return totals if found else None


def _quality_stat(quality: dict, key: str) -> float:
    """One quality stat as a float (``fmt_stat`` strings parse back)."""
    value = quality.get(key)
    try:
        return float(value)
    except (TypeError, ValueError):
        return float("nan")


def _ratio_delta(baseline: float, candidate: float) -> float | None:
    """``(candidate - baseline) / baseline``, or None when undefined."""
    if not math.isfinite(baseline) or not math.isfinite(candidate):
        return None
    if baseline <= 0:
        return None
    return (candidate - baseline) / baseline


def diff_artifacts(
    baseline: dict,
    candidate: dict,
    *,
    max_regress: float = 0.10,
    max_time_regress: float | None = None,
    max_error_widen: float | None = 0.10,
) -> list[Finding]:
    """Compare two run artifacts strategy-by-strategy.

    Gating rules (``severity="regression"``):

    * a strategy's plan fingerprint changed;
    * charged cost grew by more than ``max_regress`` (fractional);
    * estimation error widened (``abs`` grew) by more than
      ``max_error_widen`` (absolute, fractional error units; ``None``
      reports only);
    * planning time grew by more than ``max_time_regress`` (``None`` —
      the default — reports only, because wall-clock is not comparable
      across machines);
    * a baseline strategy disappeared, errored, or flipped to DNF.

    Improvements and newly added strategies are ``note`` findings.
    """
    workload = str(candidate.get("workload", baseline.get("workload", "?")))
    findings: list[Finding] = []

    base_env = _as_dict(baseline.get("environment"))
    cand_env = _as_dict(candidate.get("environment"))
    for key in ("scale", "seed"):
        if base_env.get(key) != cand_env.get(key):
            findings.append(
                Finding(
                    "note",
                    workload,
                    "*",
                    "environment",
                    f"{key} differs ({base_env.get(key)} vs "
                    f"{cand_env.get(key)}); cost comparisons may be "
                    "meaningless",
                )
            )

    base_strategies = _as_dict(baseline.get("strategies"))
    cand_strategies = _as_dict(candidate.get("strategies"))

    for strategy in sorted(set(base_strategies) | set(cand_strategies)):
        base = base_strategies.get(strategy)
        cand = cand_strategies.get(strategy)
        if base is not None and not isinstance(base, dict):
            findings.append(
                Finding(
                    "note", workload, strategy, "malformed",
                    "baseline record is not an object; skipping "
                    "comparisons for this strategy",
                )
            )
            continue
        if cand is not None and not isinstance(cand, dict):
            findings.append(
                Finding(
                    "note", workload, strategy, "malformed",
                    "candidate record is not an object; skipping "
                    "comparisons for this strategy",
                )
            )
            continue
        if base is None:
            findings.append(
                Finding(
                    "note", workload, strategy, "added",
                    "strategy present only in the candidate run",
                )
            )
            continue
        if cand is None:
            findings.append(
                Finding(
                    "regression", workload, strategy, "missing",
                    "strategy present in baseline but absent from the "
                    "candidate run",
                )
            )
            continue

        if not base.get("error") and cand.get("error"):
            findings.append(
                Finding(
                    "regression", workload, strategy, "error",
                    f"optimizer now fails: {cand['error']}",
                )
            )
            continue

        base_print = base.get("fingerprint")
        cand_print = cand.get("fingerprint")
        if base_print and cand_print and base_print != cand_print:
            findings.append(
                Finding(
                    "regression", workload, strategy, "fingerprint",
                    f"chosen plan changed ({base_print} -> {cand_print})",
                )
            )

        if (
            base.get("executed")
            and cand.get("executed")
            and base.get("completed")
            and not cand.get("completed")
        ):
            findings.append(
                Finding(
                    "regression", workload, strategy, "dnf",
                    "plan completed in baseline but hit the cost budget "
                    "(DNF) in the candidate run",
                )
            )

        charged_delta = _ratio_delta(
            _as_float(base.get("charged")), _as_float(cand.get("charged"))
        )
        if charged_delta is not None:
            if charged_delta > max_regress:
                findings.append(
                    Finding(
                        "regression", workload, strategy, "charged",
                        f"charged cost regressed {charged_delta:+.1%} "
                        f"(limit {max_regress:.0%}): "
                        f"{_as_float(base.get('charged')):.1f} -> "
                        f"{_as_float(cand.get('charged')):.1f}",
                    )
                )
            elif charged_delta < -max_regress:
                findings.append(
                    Finding(
                        "note", workload, strategy, "charged",
                        f"charged cost improved {charged_delta:+.1%}",
                    )
                )

        time_delta = _ratio_delta(
            _as_float(base.get("planning_seconds")),
            _as_float(cand.get("planning_seconds")),
        )
        if time_delta is not None:
            if max_time_regress is not None and time_delta > max_time_regress:
                findings.append(
                    Finding(
                        "regression", workload, strategy, "planning_time",
                        f"planning time regressed {time_delta:+.1%} "
                        f"(limit {max_time_regress:.0%})",
                    )
                )
            elif abs(time_delta) > 0.5:
                findings.append(
                    Finding(
                        "note", workload, strategy, "planning_time",
                        f"planning time changed {time_delta:+.1%} "
                        "(wall-clock; not gated by default)",
                    )
                )

        base_err = _as_float(base.get("estimation_error"))
        cand_err = _as_float(cand.get("estimation_error"))
        if math.isfinite(base_err) and math.isfinite(cand_err):
            widened = abs(cand_err) - abs(base_err)
            if max_error_widen is not None and widened > max_error_widen:
                findings.append(
                    Finding(
                        "regression", workload, strategy,
                        "estimation_error",
                        f"cost-model error widened by {widened:+.2f} "
                        f"(|{base_err:+.2f}| -> |{cand_err:+.2f}|, "
                        f"limit {max_error_widen:.2f})",
                    )
                )
            elif widened < -0.05:
                findings.append(
                    Finding(
                        "note", workload, strategy, "estimation_error",
                        f"cost-model error narrowed by {-widened:.2f}",
                    )
                )

        # Decision-level drift: ledger event-count deltas are informational
        # only (never gate) — they surface "the optimizer reasoned
        # differently" even when the chosen plan's fingerprint is stable.
        # Pre-provenance baselines have no ledger at all: say so once as
        # a note instead of silently skipping (or worse, crashing).
        base_counts = _ledger_counts(base)
        cand_counts = _ledger_counts(cand)
        if (base_counts is None) != (cand_counts is None):
            side = "candidate" if base_counts is None else "baseline"
            findings.append(
                Finding(
                    "note", workload, strategy, "ledger",
                    f"provenance ledger recorded only in the {side} run "
                    "(the other artifact predates decision-level "
                    "recording); ledger drift not compared",
                )
            )
        if base_counts and cand_counts:
            for kind in sorted(set(base_counts) | set(cand_counts)):
                before = int(base_counts.get(kind, 0))
                after = int(cand_counts.get(kind, 0))
                if before != after:
                    findings.append(
                        Finding(
                            "note", workload, strategy, "ledger",
                            f"{kind} event count changed "
                            f"{before} -> {after} (informational; "
                            "decision-level drift)",
                        )
                    )

        # Estimation-quality drift: like ledger counts, these sections are
        # informational only. They answer "did our estimates get better or
        # worse?", which is orthogonal to "did the plan change?" — the
        # gated questions above.
        base_quality = _quality(base)
        cand_quality = _quality(cand)
        if (base_quality is None) != (cand_quality is None):
            side = "candidate" if base_quality is None else "baseline"
            findings.append(
                Finding(
                    "note", workload, strategy, "quality",
                    f"estimation-quality section recorded only in the "
                    f"{side} run (the other artifact predates feedback "
                    "collection); quality drift not compared",
                )
            )
        if base_quality is not None and cand_quality is not None:
            base_q = _quality_stat(base_quality, "cost_qerror")
            cand_q = _quality_stat(cand_quality, "cost_qerror")
            if (
                math.isfinite(base_q)
                and math.isfinite(cand_q)
                and abs(cand_q - base_q) > 0.05
            ):
                direction = "worsened" if cand_q > base_q else "improved"
                findings.append(
                    Finding(
                        "note", workload, strategy, "quality",
                        f"plan cost q-error {direction} "
                        f"{base_q:.2f} -> {cand_q:.2f} (informational; "
                        "estimation quality)",
                    )
                )
            base_flags = int(base_quality.get("drift_flags", 0) or 0)
            cand_flags = int(cand_quality.get("drift_flags", 0) or 0)
            if base_flags != cand_flags:
                findings.append(
                    Finding(
                        "note", workload, strategy, "quality",
                        f"statistics drift flags changed "
                        f"{base_flags} -> {cand_flags} (informational; "
                        "observed-vs-declared statistics)",
                    )
                )

        # Runtime-resource drift: like ledger/quality, informational only.
        # A row-vs-vector comparison (or a pre-telemetry baseline) shows
        # up as a one-sided note instead of being silently ignored as an
        # unknown record key; when both sides carry the section, the
        # deterministic counters get per-key deltas.
        base_resources = _resources(base)
        cand_resources = _resources(cand)
        if (base_resources is None) != (cand_resources is None):
            side = "candidate" if base_resources is None else "baseline"
            findings.append(
                Finding(
                    "note", workload, strategy, "resources",
                    f"resource roll-up recorded only in the {side} run "
                    "(the other artifact predates live telemetry); "
                    "resource drift not compared",
                )
            )
        if base_resources is not None and cand_resources is not None:
            for key in _RESOURCE_NOTE_KEYS:
                before = _as_float(base_resources.get(key))
                after = _as_float(cand_resources.get(key))
                if (
                    math.isfinite(before)
                    and math.isfinite(after)
                    and before != after
                ):
                    findings.append(
                        Finding(
                            "note", workload, strategy, "resources",
                            f"{key} changed {before:g} -> {after:g} "
                            "(informational; runtime resources)",
                        )
                    )

        # Batch-granular actuals exist only on instrumented vector
        # records; a row-vs-vector diff is expected to be one-sided.
        base_batches = _batch_totals(base)
        cand_batches = _batch_totals(cand)
        if (base_batches is None) != (cand_batches is None):
            side = "candidate" if base_batches is None else "baseline"
            findings.append(
                Finding(
                    "note", workload, strategy, "batch",
                    f"batch actuals recorded only in the {side} run "
                    "(vector-engine instrumentation; row-path records "
                    "never carry them) — row-path totals remain the "
                    "gated figures",
                )
            )
        if base_batches is not None and cand_batches is not None:
            for label in sorted(set(base_batches) | set(cand_batches)):
                before_n = base_batches.get(label)
                after_n = cand_batches.get(label)
                if before_n != after_n:
                    findings.append(
                        Finding(
                            "note", workload, strategy, "batch",
                            f"operator {label!r} batch count changed "
                            f"{before_n} -> {after_n} (informational; "
                            "vector batch shape)",
                        )
                    )

    return findings


def has_regressions(findings: list[Finding]) -> bool:
    return any(finding.severity == "regression" for finding in findings)
