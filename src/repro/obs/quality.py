"""Estimation-quality arithmetic: q-error, drift detection, histograms.

The paper's rank metric ``(selectivity - 1) / cost`` is only as good as
the numbers fed to it, and those numbers come from catalog declarations
that can rot — data skew shifts a pass rate, a UDF's per-call cost drifts
with its inputs, or a fault corrupts the metadata outright. This module
holds the shared arithmetic every consumer of "how wrong were we?" uses:

* :func:`qerror` — the standard multiplicative error metric
  (``max(est/act, act/est)``, 1.0 = perfect), with *explicit* edge
  semantics for zeros and non-finite inputs so no two call sites invent
  their own;
* :func:`signed_relative_error` — the signed companion
  (``(est - act) / act``) used by the bench report's ``est.err`` column;
  it shares qerror's zero and non-finite conventions;
* :func:`qerror_histogram` — log-scale (powers-of-two) bucketing, the
  shape estimation error is conventionally reported in;
* :func:`detect_drift` / :func:`catalog_drift` — compare observed
  statistics (from a feedback store) or declared catalog metadata against
  their domain contracts and a q-error threshold, emitting ``stats.drift``
  events through the existing provenance ledger and tracer machinery.

Drift findings are *observations*, never repairs: the optimizer's
guardrails (:mod:`repro.optimizer.guardrails`) clamp hostile statistics
at plan time; this module merely makes the rot visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.provenance import NULL_LEDGER
from repro.obs.tracer import NULL_TRACER

#: A q-error above this flags the statistic as drifted. 2.0 — "off by a
#: factor of two in either direction" — is the conventional coarse line
#: between noise and a rank-threatening lie.
DRIFT_QERROR_THRESHOLD = 2.0

#: Histogram buckets cover ``[2^0, 2^1) .. [2^CAP, inf)``; q-errors past
#: ``2^CAP`` share the final bucket (three orders of magnitude is already
#: "the estimate is fiction").
QERROR_BUCKET_CAP = 10


def qerror(estimated: float, actual: float) -> float:
    """The standard q-error: ``max(est/act, act/est)``; 1.0 is perfect.

    Edge semantics, chosen once here so every consumer agrees:

    * either side ``nan`` or negative → ``nan`` (no error magnitude is
      defined; negative estimates/actuals are domain violations, not
      large errors);
    * both zero → ``1.0`` (a zero estimate of a zero actual is perfect);
    * exactly one zero → ``inf`` (the multiplicative error is unbounded);
    * both infinite → ``nan`` (``inf/inf`` is indeterminate);
    * one infinite → ``inf``.
    """
    if math.isnan(estimated) or math.isnan(actual):
        return float("nan")
    if estimated < 0 or actual < 0:
        return float("nan")
    if math.isinf(estimated) and math.isinf(actual):
        return float("nan")
    if estimated == 0 and actual == 0:
        return 1.0
    if estimated == 0 or actual == 0:
        return float("inf")
    if math.isinf(estimated) or math.isinf(actual):
        return float("inf")
    return max(estimated / actual, actual / estimated)


def signed_relative_error(estimated: float, actual: float) -> float:
    """Signed relative error ``(estimated - actual) / actual``.

    The signed companion to :func:`qerror`, sharing its zero and
    non-finite conventions: a zero actual with a zero estimate is a
    *perfect* estimate (``0.0``); a zero actual against a nonzero
    estimate is ``nan`` (relative error against zero is undefined, and
    reporting it as infinite would poison aggregates); negative or
    ``nan`` actuals are ``nan``. These are exactly the conventions the
    bench report's ``est.err`` column has always used — committed
    ``BENCH_*.json`` baselines gate on the values bit-for-bit.
    """
    if math.isnan(estimated) or math.isnan(actual):
        return float("nan")
    if actual == 0:
        return 0.0 if estimated == 0 else float("nan")
    if actual < 0:
        return float("nan")
    return (estimated - actual) / actual


def _bucket_label(power: int) -> str:
    if power >= QERROR_BUCKET_CAP:
        return f">={2 ** QERROR_BUCKET_CAP}"
    return f"[{2 ** power},{2 ** (power + 1)})"


def qerror_histogram(values) -> dict[str, int]:
    """Log-scale histogram of q-errors: powers-of-two buckets.

    Keys are emitted in ascending bucket order (then ``inf``), only for
    non-empty buckets, so the dict serialises deterministically. ``nan``
    values (undefined errors) are skipped — they carry no magnitude to
    bucket — and q-errors below 1 (impossible from :func:`qerror`, but
    callers may feed raw ratios) clamp into the first bucket.
    """
    counts: dict[int, int] = {}
    infinite = 0
    for value in values:
        if math.isnan(value):
            continue
        if math.isinf(value):
            infinite += 1
            continue
        power = 0 if value < 2.0 else int(math.log2(value))
        counts[min(power, QERROR_BUCKET_CAP)] = (
            counts.get(min(power, QERROR_BUCKET_CAP), 0) + 1
        )
    histogram = {
        _bucket_label(power): counts[power] for power in sorted(counts)
    }
    if infinite:
        histogram["inf"] = infinite
    return histogram


def fmt_stat(value: float) -> str | float:
    """JSON- and ledger-safe rendering of a possibly non-finite float.

    Finite floats pass through unchanged (so JSON keeps them numeric);
    non-finite ones become their ``float()``-parseable names, which
    survives strict-JSON round trips (strict JSON has no ``NaN``).
    """
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def valid_selectivity(value: float) -> bool:
    """Selectivities are pass rates: finite and within ``[0, 1]``."""
    return math.isfinite(value) and 0.0 <= value <= 1.0


def valid_cost(value: float) -> bool:
    """Per-call costs are charges: finite and non-negative."""
    return math.isfinite(value) and value >= 0.0


@dataclass(frozen=True)
class DriftFinding:
    """One statistic that disagrees with its declaration.

    ``reason`` is ``"invalid-declared"`` (the declared value violates its
    domain contract — no observation needed to know it lies) or
    ``"qerror"`` (declared and observed are both legitimate values, but
    their q-error exceeds the threshold). ``observed`` and ``qerror`` are
    ``nan`` when no observation backs the finding.
    """

    subject: str
    field: str  # "selectivity" | "cost_per_call"
    declared: float
    observed: float = float("nan")
    qerror: float = float("nan")
    reason: str = "qerror"

    def describe(self) -> str:
        declared = fmt_stat(self.declared)
        declared = (
            f"{declared:g}" if isinstance(declared, float) else declared
        )
        if self.reason == "invalid-declared":
            return (
                f"{self.subject}: declared {self.field} {declared} is "
                f"outside its domain (no observation needed)"
            )
        observed = fmt_stat(self.observed)
        observed = (
            f"{observed:g}" if isinstance(observed, float) else observed
        )
        q = fmt_stat(self.qerror)
        q = f"{q:.2f}" if isinstance(q, float) else q
        return (
            f"{self.subject}: {self.field} declared {declared} but "
            f"observed {observed} (q-error {q})"
        )

    def as_dict(self) -> dict:
        return {
            "subject": self.subject,
            "field": self.field,
            "declared": fmt_stat(self.declared),
            "observed": fmt_stat(self.observed),
            "qerror": fmt_stat(self.qerror),
            "reason": self.reason,
        }


def _emit(findings, ledger, tracer) -> None:
    """Record each finding as a ``stats.drift`` ledger/trace event."""
    for finding in findings:
        if ledger.enabled:
            ledger.record(
                "stats.drift",
                subject=finding.subject,
                field=finding.field,
                declared=fmt_stat(finding.declared),
                observed=fmt_stat(finding.observed),
                qerror=fmt_stat(finding.qerror),
                reason=finding.reason,
            )
        if tracer.enabled:
            tracer.event(
                "stats.drift",
                subject=finding.subject,
                field=finding.field,
                declared=fmt_stat(finding.declared),
                observed=fmt_stat(finding.observed),
                qerror=fmt_stat(finding.qerror),
                reason=finding.reason,
            )


def detect_drift(
    observations,
    threshold: float = DRIFT_QERROR_THRESHOLD,
    ledger=NULL_LEDGER,
    tracer=NULL_TRACER,
) -> list[DriftFinding]:
    """Compare observed predicate statistics against their declarations.

    ``observations`` are duck-typed
    :class:`~repro.obs.feedback.PredicateObservation` objects (attributes
    ``predicate``, ``declared_selectivity`` / ``declared_cost_per_call``,
    ``observed_selectivity`` / ``observed_cost_per_call``, ``evaluated``,
    ``charged_calls``). Two rules per field:

    * a declared value outside its domain is flagged unconditionally
      (``invalid-declared`` — it lies whether or not we ran anything);
    * a legitimate declared value is flagged when its q-error against the
      observation exceeds ``threshold`` (only fields that were actually
      observed: ``evaluated > 0`` for selectivity, ``charged_calls > 0``
      for per-call cost).

    Findings are emitted as ``stats.drift`` events on the given ledger
    and tracer (null-object defaults: zero overhead when unwired).
    """
    findings: list[DriftFinding] = []
    for obs in observations:
        subject = obs.predicate
        declared_sel = obs.declared_selectivity
        if not valid_selectivity(declared_sel):
            findings.append(
                DriftFinding(
                    subject=subject,
                    field="selectivity",
                    declared=declared_sel,
                    reason="invalid-declared",
                )
            )
        elif obs.evaluated > 0:
            q = qerror(declared_sel, obs.observed_selectivity)
            if q > threshold:
                findings.append(
                    DriftFinding(
                        subject=subject,
                        field="selectivity",
                        declared=declared_sel,
                        observed=obs.observed_selectivity,
                        qerror=q,
                    )
                )
        declared_cost = obs.declared_cost_per_call
        if not valid_cost(declared_cost):
            findings.append(
                DriftFinding(
                    subject=subject,
                    field="cost_per_call",
                    declared=declared_cost,
                    reason="invalid-declared",
                )
            )
        elif obs.charged_calls > 0:
            q = qerror(declared_cost, obs.observed_cost_per_call)
            if q > threshold:
                findings.append(
                    DriftFinding(
                        subject=subject,
                        field="cost_per_call",
                        declared=declared_cost,
                        observed=obs.observed_cost_per_call,
                        qerror=q,
                    )
                )
    _emit(findings, ledger, tracer)
    return findings


def catalog_drift(
    catalog,
    names=None,
    ledger=NULL_LEDGER,
    tracer=NULL_TRACER,
) -> list[DriftFinding]:
    """Flag catalog UDF declarations that violate their domain contracts.

    The no-observations half of drift detection: a ``nan`` selectivity or
    a negative per-call cost lies regardless of what ran, so corrupted
    catalog metadata (e.g. a chaos ``corrupt-stats`` fault) is detectable
    before — or without — executing anything. ``names`` restricts the
    sweep (default: every registered function). Findings emit
    ``stats.drift`` events like :func:`detect_drift`.
    """
    findings: list[DriftFinding] = []
    for name in names if names is not None else catalog.functions.names():
        function = catalog.functions.get(name)
        if not valid_selectivity(function.selectivity):
            findings.append(
                DriftFinding(
                    subject=name,
                    field="selectivity",
                    declared=function.selectivity,
                    reason="invalid-declared",
                )
            )
        if not valid_cost(function.cost_per_call):
            findings.append(
                DriftFinding(
                    subject=name,
                    field="cost_per_call",
                    declared=function.cost_per_call,
                    reason="invalid-declared",
                )
            )
    _emit(findings, ledger, tracer)
    return findings


def quality_summary(
    estimated_cost: float,
    charged: float,
    observations,
    threshold: float = DRIFT_QERROR_THRESHOLD,
) -> dict:
    """The estimation-quality section embedded in ``BENCH_*.json``.

    One dict per strategy: the plan-level cost q-error (estimate vs the
    charge actually measured), the per-predicate selectivity q-error
    histogram and maximum, and the drift-flag count — everything
    ``bench-diff`` reports as non-gating notes.
    """
    sel_qerrors = [
        qerror(obs.declared_selectivity, obs.observed_selectivity)
        for obs in observations
        if obs.evaluated > 0
    ]
    finite = [q for q in sel_qerrors if math.isfinite(q)]
    findings = detect_drift(observations, threshold=threshold)
    return {
        "cost_qerror": fmt_stat(qerror(estimated_cost, charged)),
        "predicates_observed": len(observations),
        "selectivity_qerror_max": fmt_stat(
            max(finite) if finite else float("nan")
        ),
        "selectivity_qerror_histogram": qerror_histogram(sel_qerrors),
        "drift_flags": len(findings),
        "drift": [finding.as_dict() for finding in findings],
    }
