"""A registry of named counters, timers, gauges, and histograms.

The unified instrumentation surface for the reproduction: planner decision
counts, executor charge ledgers, and wall-clock timings all land here under
dotted names (``plan.*`` for optimizer-side metrics, ``exec.*`` for
executor-side ones), so reports and tests read one flat snapshot instead of
poking at per-layer attributes.

Naming convention (the uniform names the CLI's ``--stats`` prints):

* ``plan.wall_seconds`` — :attr:`OptimizedPlan.planning_seconds`
* ``exec.wall_seconds`` — :attr:`QueryResult.wall_seconds`
* ``exec.charged``, ``exec.random_ios``, … — the meter snapshot
* ``plan.<note>`` — every optimizer decision note

The original attributes remain untouched; :func:`record_run` only mirrors
them into the registry under the uniform names.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing named count."""

    name: str
    value: float = 0.0

    def incr(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Timer:
    """Accumulated wall-clock time; usable as a context manager."""

    name: str
    seconds: float = 0.0
    count: int = 0
    _started: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        assert self._started is not None
        self.record(time.perf_counter() - self._started)
        self._started = None
        return False

    def record(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1


@dataclass
class Histogram:
    """A set of observed values with summary statistics."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else math.nan

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not self.values:
            return math.nan
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[index]


class MetricsRegistry:
    """Named counters, timers, gauges, and histograms behind one snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = value

    def snapshot(self) -> dict[str, float]:
        """One flat dict of every metric, dotted-name keyed."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, value in self._gauges.items():
            out[name] = value
        for name, timer in self._timers.items():
            out[f"{name}.seconds"] = timer.seconds
            out[f"{name}.count"] = timer.count
        for name, histogram in self._histograms.items():
            out[f"{name}.count"] = histogram.count
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.p50"] = histogram.percentile(0.50)
            out[f"{name}.p95"] = histogram.percentile(0.95)
            if histogram.values:
                out[f"{name}.max"] = max(histogram.values)
        return out


def record_run(
    registry: MetricsRegistry,
    optimized=None,
    result=None,
) -> MetricsRegistry:
    """Mirror one optimize/execute round into ``registry``.

    Exposes :attr:`OptimizedPlan.planning_seconds` and
    :attr:`QueryResult.wall_seconds` under the uniform names
    ``plan.wall_seconds`` / ``exec.wall_seconds``, the meter snapshot under
    ``exec.*``, and every optimizer note under ``plan.*``. The source
    attributes are read-only here — nothing existing changes shape.
    """
    if optimized is not None:
        registry.gauge("plan.wall_seconds", optimized.planning_seconds)
        registry.gauge("plan.estimated_cost", optimized.estimated_cost)
        for key, value in optimized.notes.items():
            if isinstance(value, (int, float)):
                registry.gauge(f"plan.{key}", float(value))
    if result is not None:
        registry.gauge("exec.wall_seconds", result.wall_seconds)
        registry.gauge("exec.rows", float(result.row_count))
        registry.gauge("exec.completed", float(result.completed))
        for key, value in result.metrics.items():
            registry.gauge(f"exec.{key}", float(value))
        if result.cache_stats is not None:
            registry.gauge("exec.cache_hits", float(result.cache_stats.hits))
            registry.gauge(
                "exec.cache_misses", float(result.cache_stats.misses)
            )
            registry.gauge(
                "exec.cache_evictions", float(result.cache_stats.evictions)
            )
            registry.gauge(
                "exec.cache_entries", float(result.cache_entries)
            )
    return registry
