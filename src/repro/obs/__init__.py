"""Observability: tracing, metrics, profiling, and persistent run artifacts.

Four small pieces:

* :mod:`repro.obs.tracer` — span-based decision traces with JSONL export
  and a zero-overhead :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  timers, gauges, and histograms, plus :func:`record_run` which mirrors one
  optimize/execute round under uniform ``plan.*`` / ``exec.*`` names;
* :mod:`repro.obs.profile` — a :class:`PhaseProfiler` accumulating
  wall-clock per optimizer/executor phase (enumeration levels, fixpoint
  rounds, DP steps, operators) with a ``top_hotspots`` report and a
  zero-overhead :class:`NullProfiler` default;
* :mod:`repro.obs.artifacts` — schema-versioned ``BENCH_<workload>.json``
  run artifacts (environment, per-strategy measurements, plan
  fingerprints, hotspots) plus :func:`diff_artifacts`, the plan-regression
  gate behind ``python -m repro bench-diff``;
* :mod:`repro.obs.provenance` — a typed :class:`ProvenanceLedger` of every
  placement decision (rank orderings, hoists, rank comparisons, migration
  moves, prunes, virtual joins) with a zero-overhead :class:`NullLedger`
  default, plus the ``repro why`` report and counterfactual re-costing;
* :mod:`repro.obs.chrome` — Chrome ``trace_event`` export of tracer spans
  and profiler phases, loadable in Perfetto;
* :mod:`repro.obs.quality` — the shared :func:`qerror` metric, log-scale
  q-error histograms, and the observed-vs-declared drift detector that
  emits ``stats.drift`` ledger/trace events;
* :mod:`repro.obs.feedback` — :class:`FeedbackCollector` execution sinks
  and the epoch-versioned :class:`StatsFeedbackStore`
  (``STATS_<workload>.json``) behind ``repro stats`` / ``repro drift``
  and the opt-in ``Catalog.apply_feedback`` injection path;
* :mod:`repro.obs.tables` — the shared fixed-width ASCII table renderer
  behind the bench, stats/drift, chaos, and ``repro top`` reports;
* :mod:`repro.obs.histograms` — :class:`StreamingHistogram`, the
  log-bucketed single-pass histogram with nearest-rank quantiles shared
  by telemetry and the metrics export;
* :mod:`repro.obs.runtime_telemetry` — :class:`RuntimeMonitor`, the live
  per-operator progress estimator, per-predicate cost telemetry, and
  :class:`QueryResourceReport` roll-up behind ``repro top``;
* :mod:`repro.obs.export` — the Prometheus-text / JSON metrics snapshot
  (:func:`build_export` / :func:`export_metrics`) behind
  ``--metrics-export``;
* :mod:`repro.obs.flightrec` — :class:`FlightRecorder`, the fixed-capacity
  execution flight recorder whose ``FLIGHT_<workload>.json`` crash dumps
  back ``repro postmortem``.
"""

from repro.obs.artifacts import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    ArtifactRecorder,
    Finding,
    artifact_path,
    build_run_artifact,
    canonical_plan_form,
    collect_artifacts,
    diff_artifacts,
    has_regressions,
    load_run_artifact,
    plan_fingerprint,
    record_run_artifact,
)
from repro.obs.chrome import (
    build_chrome_trace,
    export_chrome_trace,
)
from repro.obs.export import (
    PrometheusExport,
    build_export,
    export_metrics,
)
from repro.obs.feedback import (
    STATS_PREFIX,
    STATS_SCHEMA_VERSION,
    FeedbackCollector,
    PredicateObservation,
    StatsFeedbackStore,
    format_drift_report,
    format_stats_epoch,
    predicate_fingerprint,
    stats_path,
)
from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    FLIGHT_PREFIX,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    build_flight_dump,
    flight_path,
    format_postmortem,
    load_flight_dump,
    write_flight_dump,
)
from repro.obs.histograms import (
    DEFAULT_QUANTILES,
    StreamingHistogram,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    record_run,
)
from repro.obs.provenance import (
    EVENT_KINDS,
    NULL_LEDGER,
    Counterfactual,
    CounterfactualReport,
    LedgerEvent,
    NullLedger,
    ProvenanceLedger,
    counterfactual_report,
    skeleton_signature,
    why_report,
)
from repro.obs.profile import (
    NULL_PHASE,
    NULL_PROFILER,
    NullPhase,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
)
from repro.obs.quality import (
    DRIFT_QERROR_THRESHOLD,
    DriftFinding,
    catalog_drift,
    detect_drift,
    fmt_stat,
    qerror,
    qerror_histogram,
    quality_summary,
    signed_relative_error,
)
from repro.obs.runtime_telemetry import (
    OperatorProgress,
    PredicateTelemetry,
    QueryResourceReport,
    RuntimeMonitor,
    format_top,
)
from repro.obs.tables import (
    Column,
    Table,
    auto_table,
    fmt_cell,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    canonical_value,
)

__all__ = [
    "ARTIFACT_PREFIX",
    "ArtifactRecorder",
    "Column",
    "Counter",
    "Counterfactual",
    "CounterfactualReport",
    "DEFAULT_CAPACITY",
    "DEFAULT_QUANTILES",
    "DRIFT_QERROR_THRESHOLD",
    "DriftFinding",
    "EVENT_KINDS",
    "FLIGHT_PREFIX",
    "FLIGHT_SCHEMA_VERSION",
    "FeedbackCollector",
    "Finding",
    "FlightRecorder",
    "Histogram",
    "LedgerEvent",
    "MetricsRegistry",
    "NULL_LEDGER",
    "NULL_PHASE",
    "NULL_PROFILER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullLedger",
    "NullPhase",
    "NullProfiler",
    "NullSpan",
    "NullTracer",
    "OperatorProgress",
    "PhaseProfiler",
    "PhaseStat",
    "PredicateObservation",
    "PredicateTelemetry",
    "PrometheusExport",
    "ProvenanceLedger",
    "QueryResourceReport",
    "RuntimeMonitor",
    "SCHEMA_VERSION",
    "STATS_PREFIX",
    "STATS_SCHEMA_VERSION",
    "Span",
    "StatsFeedbackStore",
    "StreamingHistogram",
    "Table",
    "Timer",
    "Tracer",
    "artifact_path",
    "auto_table",
    "build_chrome_trace",
    "build_export",
    "build_flight_dump",
    "build_run_artifact",
    "canonical_plan_form",
    "canonical_value",
    "catalog_drift",
    "collect_artifacts",
    "counterfactual_report",
    "detect_drift",
    "diff_artifacts",
    "export_chrome_trace",
    "export_metrics",
    "flight_path",
    "fmt_cell",
    "fmt_stat",
    "format_drift_report",
    "format_postmortem",
    "format_stats_epoch",
    "format_top",
    "has_regressions",
    "load_flight_dump",
    "load_run_artifact",
    "plan_fingerprint",
    "predicate_fingerprint",
    "qerror",
    "qerror_histogram",
    "quality_summary",
    "record_run",
    "record_run_artifact",
    "signed_relative_error",
    "skeleton_signature",
    "stats_path",
    "why_report",
    "write_flight_dump",
]
