"""Observability: structured tracing and metrics for optimizer + executor.

Two small pieces:

* :mod:`repro.obs.tracer` — span-based decision traces with JSONL export
  and a zero-overhead :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  timers, gauges, and histograms, plus :func:`record_run` which mirrors one
  optimize/execute round under uniform ``plan.*`` / ``exec.*`` names.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    record_run,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Timer",
    "Tracer",
    "record_run",
]
