"""Observability: tracing, metrics, profiling, and persistent run artifacts.

Four small pieces:

* :mod:`repro.obs.tracer` — span-based decision traces with JSONL export
  and a zero-overhead :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  timers, gauges, and histograms, plus :func:`record_run` which mirrors one
  optimize/execute round under uniform ``plan.*`` / ``exec.*`` names;
* :mod:`repro.obs.profile` — a :class:`PhaseProfiler` accumulating
  wall-clock per optimizer/executor phase (enumeration levels, fixpoint
  rounds, DP steps, operators) with a ``top_hotspots`` report and a
  zero-overhead :class:`NullProfiler` default;
* :mod:`repro.obs.artifacts` — schema-versioned ``BENCH_<workload>.json``
  run artifacts (environment, per-strategy measurements, plan
  fingerprints, hotspots) plus :func:`diff_artifacts`, the plan-regression
  gate behind ``python -m repro bench-diff``.
"""

from repro.obs.artifacts import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    ArtifactRecorder,
    Finding,
    artifact_path,
    build_run_artifact,
    canonical_plan_form,
    collect_artifacts,
    diff_artifacts,
    has_regressions,
    load_run_artifact,
    plan_fingerprint,
    record_run_artifact,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    record_run,
)
from repro.obs.profile import (
    NULL_PHASE,
    NULL_PROFILER,
    NullPhase,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "ARTIFACT_PREFIX",
    "ArtifactRecorder",
    "Counter",
    "Finding",
    "Histogram",
    "MetricsRegistry",
    "NULL_PHASE",
    "NULL_PROFILER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullPhase",
    "NullProfiler",
    "NullSpan",
    "NullTracer",
    "PhaseProfiler",
    "PhaseStat",
    "SCHEMA_VERSION",
    "Span",
    "Timer",
    "Tracer",
    "artifact_path",
    "build_run_artifact",
    "canonical_plan_form",
    "collect_artifacts",
    "diff_artifacts",
    "has_regressions",
    "load_run_artifact",
    "plan_fingerprint",
    "record_run",
    "record_run_artifact",
]
