"""Observability: tracing, metrics, profiling, and persistent run artifacts.

Four small pieces:

* :mod:`repro.obs.tracer` — span-based decision traces with JSONL export
  and a zero-overhead :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named counters,
  timers, gauges, and histograms, plus :func:`record_run` which mirrors one
  optimize/execute round under uniform ``plan.*`` / ``exec.*`` names;
* :mod:`repro.obs.profile` — a :class:`PhaseProfiler` accumulating
  wall-clock per optimizer/executor phase (enumeration levels, fixpoint
  rounds, DP steps, operators) with a ``top_hotspots`` report and a
  zero-overhead :class:`NullProfiler` default;
* :mod:`repro.obs.artifacts` — schema-versioned ``BENCH_<workload>.json``
  run artifacts (environment, per-strategy measurements, plan
  fingerprints, hotspots) plus :func:`diff_artifacts`, the plan-regression
  gate behind ``python -m repro bench-diff``;
* :mod:`repro.obs.provenance` — a typed :class:`ProvenanceLedger` of every
  placement decision (rank orderings, hoists, rank comparisons, migration
  moves, prunes, virtual joins) with a zero-overhead :class:`NullLedger`
  default, plus the ``repro why`` report and counterfactual re-costing;
* :mod:`repro.obs.chrome` — Chrome ``trace_event`` export of tracer spans
  and profiler phases, loadable in Perfetto.
"""

from repro.obs.artifacts import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    ArtifactRecorder,
    Finding,
    artifact_path,
    build_run_artifact,
    canonical_plan_form,
    collect_artifacts,
    diff_artifacts,
    has_regressions,
    load_run_artifact,
    plan_fingerprint,
    record_run_artifact,
)
from repro.obs.chrome import (
    build_chrome_trace,
    export_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    record_run,
)
from repro.obs.provenance import (
    EVENT_KINDS,
    NULL_LEDGER,
    Counterfactual,
    CounterfactualReport,
    LedgerEvent,
    NullLedger,
    ProvenanceLedger,
    counterfactual_report,
    skeleton_signature,
    why_report,
)
from repro.obs.profile import (
    NULL_PHASE,
    NULL_PROFILER,
    NullPhase,
    NullProfiler,
    PhaseProfiler,
    PhaseStat,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    canonical_value,
)

__all__ = [
    "ARTIFACT_PREFIX",
    "ArtifactRecorder",
    "Counter",
    "Counterfactual",
    "CounterfactualReport",
    "EVENT_KINDS",
    "Finding",
    "Histogram",
    "LedgerEvent",
    "MetricsRegistry",
    "NULL_LEDGER",
    "NULL_PHASE",
    "NULL_PROFILER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullLedger",
    "NullPhase",
    "NullProfiler",
    "NullSpan",
    "NullTracer",
    "PhaseProfiler",
    "PhaseStat",
    "ProvenanceLedger",
    "SCHEMA_VERSION",
    "Span",
    "Timer",
    "Tracer",
    "artifact_path",
    "build_chrome_trace",
    "build_run_artifact",
    "canonical_plan_form",
    "canonical_value",
    "collect_artifacts",
    "counterfactual_report",
    "diff_artifacts",
    "export_chrome_trace",
    "has_regressions",
    "load_run_artifact",
    "plan_fingerprint",
    "record_run",
    "record_run_artifact",
    "skeleton_signature",
    "why_report",
]
