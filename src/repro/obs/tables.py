"""One ASCII table renderer for every CLI view.

Three near-identical renderers grew up independently — the feedback
store's stats/drift tables, the bench report's comparison table, and
the chaos report's per-run table — each hand-rolling the same
fixed-width f-string layout. This module is their common core, and the
``repro top`` live-telemetry view builds on it directly.

Two shapes:

* :class:`Table` — fixed- or auto-width columns with per-column
  alignment and inter-column gaps, faithful to the historical layouts
  (single-space gaps, a two-space gap before a trailing free-form
  column, ``-`` rule sized to the header);
* :func:`fmt_cell` — the shared numeric cell formatter: non-finite
  values render as their names, missing observations (``nan``) as a
  dash, exactly like the feedback renderers always did.

Rendering is purely positional — no hashing, no ids — so table bytes
are deterministic for deterministic inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def fmt_cell(value: float, decimals: int = 4) -> str:
    """One numeric cell: ``nan`` as a dash, infinities by name."""
    if math.isnan(value):
        return "—"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:.{decimals}f}"


@dataclass(frozen=True)
class Column:
    """One table column.

    ``width=None`` means free-form: the cell (and title) render as-is
    with no padding — the historical trailing "drift"/"verdict"/bar
    columns. ``gap`` is the number of spaces before the column (ignored
    for the first column).
    """

    title: str
    width: int | None = None
    align: str = "right"  # "left" | "right"
    gap: int = 1


class Table:
    """Fixed-layout ASCII table: header, ``-`` rule, rows, raw lines.

    Rows may supply fewer cells than there are columns (the bench
    report's "not run" and DNF rows); trailing whitespace is stripped
    so short rows render exactly as the hand-rolled originals did.
    """

    def __init__(self, columns: list[Column]) -> None:
        self.columns = list(columns)
        self._lines: list[tuple[str, tuple]] = []

    def row(self, *cells: object) -> None:
        if len(cells) > len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for "
                f"{len(self.columns)} columns"
            )
        self._lines.append(("row", tuple(str(cell) for cell in cells)))

    def raw(self, text: str) -> None:
        """A pre-formatted line (error rows, footnotes) passed through."""
        self._lines.append(("raw", (text,)))

    def _format(self, column: Column, text: str) -> str:
        if column.width is None:
            return text
        if column.align == "left":
            return f"{text:<{column.width}}"
        return f"{text:>{column.width}}"

    def _join(self, cells: tuple) -> str:
        parts: list[str] = []
        for position, column in enumerate(self.columns):
            if position >= len(cells):
                break
            if position:
                parts.append(" " * column.gap)
            parts.append(self._format(column, cells[position]))
        return "".join(parts).rstrip()

    @property
    def header(self) -> str:
        return self._join(
            tuple(column.title for column in self.columns)
        )

    def render(self, rule: str = "-") -> str:
        header = self.header
        lines = [header, rule * len(header)]
        for kind, payload in self._lines:
            if kind == "raw":
                lines.append(payload[0])
            else:
                lines.append(self._join(payload))
        return "\n".join(lines)


def auto_table(
    headers: list[str],
    rows: list[list[object]],
    aligns: list[str] | None = None,
    gap: int = 2,
) -> str:
    """A table whose column widths fit the widest cell (new views only —
    the historical renderers keep their fixed widths byte-for-byte)."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max([len(header)] + [len(row[i]) for row in cells if i < len(row)])
        for i, header in enumerate(headers)
    ]
    table = Table(
        [
            Column(
                header,
                width=widths[i],
                align=(aligns[i] if aligns else "right"),
                gap=gap,
            )
            for i, header in enumerate(headers)
        ]
    )
    for row in cells:
        table.row(*row)
    return table.render()
