"""Streaming log-bucketed histograms with quantile estimates.

The list-backed :class:`~repro.obs.metrics.Histogram` keeps every
observation, which is fine for a handful of planning times but not for
one sample per predicate evaluation on a million-row run. This class
keeps O(log range) state instead: powers-of-two buckets — the same
log-scale convention :func:`~repro.obs.quality.qerror_histogram` uses —
plus exact count/sum/min/max, and estimates p50/p90/p99 by nearest-rank
walk over the buckets with the bucket's geometric midpoint clamped into
the observed ``[min, max]`` range (so a single-sample histogram reports
that sample exactly).

Edge semantics are pinned once, mirroring :func:`~repro.obs.quality.qerror`'s
explicit zero/nan/inf treatment:

* ``nan`` and negative observations are *dropped* (counted in
  ``dropped``, never bucketed — no magnitude to place);
* ``0.0`` lands in its own zero bucket (``log2`` has no bucket for it);
* ``inf`` lands in the ``inf`` bucket and surfaces in a quantile only
  when the rank genuinely falls there;
* an empty histogram reports ``nan`` for every quantile and the mean.

Serialisation follows the artifact conventions: buckets emitted in
ascending order, floats through :func:`~repro.obs.quality.fmt_stat`, no
ids or hashes anywhere — byte-stable across ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import math

from repro.obs.quality import fmt_stat

#: The default quantiles every report shows.
DEFAULT_QUANTILES = (0.50, 0.90, 0.99)


def _bucket_label(power: int) -> str:
    """``[2^p, 2^(p+1))`` with ``%g`` bounds (negative powers included)."""
    return f"[{2.0 ** power:g},{2.0 ** (power + 1):g})"


class StreamingHistogram:
    """Log-bucketed (base-2) streaming histogram of non-negative values."""

    __slots__ = (
        "counts",
        "zeros",
        "infinite",
        "dropped",
        "finite_sum",
        "minimum",
        "maximum",
    )

    def __init__(self) -> None:
        #: Count per power-of-two bucket: ``counts[p]`` covers
        #: ``[2^p, 2^(p+1))``.
        self.counts: dict[int, int] = {}
        self.zeros = 0
        self.infinite = 0
        self.dropped = 0
        self.finite_sum = 0.0
        self.minimum = math.inf  # over finite observations only
        self.maximum = -math.inf

    @property
    def count(self) -> int:
        """Observations placed (zeros + bucketed + infinite; not dropped)."""
        return self.zeros + sum(self.counts.values()) + self.infinite

    @property
    def finite_count(self) -> int:
        return self.zeros + sum(self.counts.values())

    @property
    def mean(self) -> float:
        """Mean over finite observations; ``nan`` when there are none."""
        finite = self.finite_count
        if finite <= 0:
            return math.nan
        return self.finite_sum / finite

    def observe(self, value: float) -> None:
        if math.isnan(value) or value < 0:
            self.dropped += 1
            return
        if math.isinf(value):
            self.infinite += 1
            return
        if value == 0.0:
            self.zeros += 1
        else:
            power = math.floor(math.log2(value))
            self.counts[power] = self.counts.get(power, 0) + 1
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
        self.finite_sum += value
        # A zero observation extends the finite range down to 0 so
        # quantile clamping can actually return 0.
        if value == 0.0:
            if self.minimum > 0.0 or self.minimum == math.inf:
                self.minimum = 0.0
            if self.maximum < 0.0:
                self.maximum = 0.0

    def merge(self, other: "StreamingHistogram") -> None:
        for power, count in other.counts.items():
            self.counts[power] = self.counts.get(power, 0) + count
        self.zeros += other.zeros
        self.infinite += other.infinite
        self.dropped += other.dropped
        self.finite_sum += other.finite_sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile estimate; ``fraction`` in [0, 1].

        The rank's bucket answers with its geometric midpoint clamped
        into the observed finite range — exact for single-sample and
        single-bucket-edge cases, within a factor of ``sqrt(2)``
        otherwise. A rank falling among the ``inf`` observations
        answers ``inf``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(
                f"fraction must be in [0, 1], got {fraction}"
            )
        total = self.count
        if total <= 0:
            return math.nan
        rank = min(total, max(1, math.ceil(fraction * total)))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for power in sorted(self.counts):
            seen += self.counts[power]
            if rank <= seen:
                midpoint = (2.0 ** power) * math.sqrt(2.0)
                return min(max(midpoint, self.minimum), self.maximum)
        return math.inf

    def quantiles(
        self, fractions: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for the fractions."""
        return {
            f"p{round(fraction * 100):d}": self.quantile(fraction)
            for fraction in fractions
        }

    def as_dict(self) -> dict:
        """Deterministic artifact form: ascending buckets, fmt_stat floats."""
        buckets: dict[str, int] = {}
        if self.zeros:
            buckets["0"] = self.zeros
        for power in sorted(self.counts):
            buckets[_bucket_label(power)] = self.counts[power]
        if self.infinite:
            buckets["inf"] = self.infinite
        quantiles = self.quantiles()
        return {
            "count": self.count,
            "dropped": self.dropped,
            "sum": fmt_stat(self.finite_sum),
            "mean": fmt_stat(self.mean),
            "min": fmt_stat(
                self.minimum if self.finite_count else math.nan
            ),
            "max": fmt_stat(
                self.maximum if self.finite_count else math.nan
            ),
            "p50": fmt_stat(quantiles["p50"]),
            "p90": fmt_stat(quantiles["p90"]),
            "p99": fmt_stat(quantiles["p99"]),
            "buckets": buckets,
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs in ascending order,
        the Prometheus histogram exposition shape. Zeros fall under the
        smallest bound; the implicit ``+Inf`` bucket is the caller's
        (its count is :attr:`count`)."""
        pairs: list[tuple[float, int]] = []
        cumulative = self.zeros
        for power in sorted(self.counts):
            cumulative += self.counts[power]
            pairs.append((2.0 ** (power + 1), cumulative))
        if not pairs and self.zeros:
            pairs.append((1.0, self.zeros))
        return pairs
