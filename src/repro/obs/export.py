"""Metrics export: Prometheus text and JSON snapshots.

The scrape surface over :class:`~repro.obs.metrics.MetricsRegistry` and
the live :class:`~repro.obs.runtime_telemetry.RuntimeMonitor` state —
``repro ... --metrics-export FILE`` writes one of these after a run, so
the counters the CLI prints are also machine-readable (ROADMAP item 2's
concurrent-serving work needs exactly this scrape format).

Exposition rules follow the Prometheus text format 0.0.4:

* metric names are sanitised to ``[a-zA-Z0-9_:]`` (dots become
  underscores) and prefixed ``repro_``;
* label values escape backslash, double-quote, and newline;
* histograms expose cumulative ``le`` buckets (upper bounds are this
  repo's power-of-two bucket edges) plus ``+Inf``, ``_sum`` and
  ``_count`` series;
* non-finite values render as ``NaN`` / ``+Inf`` / ``-Inf``.

Output is deterministic: families sort by name, series by label set —
no dict-iteration-order dependence, byte-stable across
``PYTHONHASHSEED`` (tested by subprocess like the feedback store).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

from repro.errors import ArtifactError
from repro.obs.histograms import StreamingHistogram
from repro.obs.metrics import MetricsRegistry

NAMESPACE = "repro"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize_name(name: str) -> str:
    cleaned = _NAME_OK.sub("_", name.replace(".", "_"))
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = f"_{cleaned}"
    return f"{NAMESPACE}_{cleaned}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return f"{{{inner}}}"


class PrometheusExport:
    """An accumulating set of metric families, rendered deterministically.

    ``gauge`` records one sample; ``histogram`` records one
    :class:`~repro.obs.histograms.StreamingHistogram` as a full
    cumulative-bucket family. Series within a family are sorted by
    label set at render time, families by name — insertion order never
    shows through.
    """

    def __init__(self) -> None:
        #: family name -> ("gauge"|"histogram", help text)
        self._families: dict[str, tuple[str, str]] = {}
        #: family name -> list of (sorted-label-items, payload)
        self._samples: dict[str, list[tuple[tuple, object]]] = {}

    def _family(self, name: str, kind: str, help_text: str) -> str:
        full = _sanitize_name(name)
        known = self._families.get(full)
        if known is not None and known[0] != kind:
            raise ArtifactError(
                f"metric {full!r} registered as both "
                f"{known[0]} and {kind}"
            )
        if known is None:
            self._families[full] = (kind, help_text)
            self._samples[full] = []
        return full

    def gauge(
        self, name: str, value: float, help_text: str = "", **labels: str
    ) -> None:
        full = self._family(name, "gauge", help_text)
        self._samples[full].append(
            (tuple(sorted(labels.items())), float(value))
        )

    def histogram(
        self,
        name: str,
        histogram: StreamingHistogram,
        help_text: str = "",
        **labels: str,
    ) -> None:
        full = self._family(name, "histogram", help_text)
        self._samples[full].append(
            (tuple(sorted(labels.items())), histogram)
        )

    def render(self) -> str:
        """The Prometheus exposition text, trailing newline included."""
        lines: list[str] = []
        for family in sorted(self._families):
            kind, help_text = self._families[family]
            if help_text:
                lines.append(f"# HELP {family} {help_text}")
            lines.append(f"# TYPE {family} {kind}")
            for label_items, payload in sorted(
                self._samples[family], key=lambda sample: sample[0]
            ):
                labels = dict(label_items)
                if kind == "gauge":
                    lines.append(
                        f"{family}{_format_labels(labels)} "
                        f"{_format_value(payload)}"
                    )
                    continue
                assert isinstance(payload, StreamingHistogram)
                for bound, cumulative in payload.cumulative_buckets():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{family}_bucket"
                        f"{_format_labels(bucket_labels)} {cumulative}"
                    )
                bucket_labels = dict(labels)
                bucket_labels["le"] = "+Inf"
                lines.append(
                    f"{family}_bucket"
                    f"{_format_labels(bucket_labels)} {payload.count}"
                )
                lines.append(
                    f"{family}_sum{_format_labels(labels)} "
                    f"{_format_value(payload.finite_sum)}"
                )
                lines.append(
                    f"{family}_count{_format_labels(labels)} "
                    f"{payload.count}"
                )
        return "\n".join(lines) + "\n"

    def as_json(self) -> dict:
        """The same snapshot as a JSON document (``--metrics-export
        x.json``): families sorted, histograms via ``as_dict``."""
        families: dict[str, dict] = {}
        for family in sorted(self._families):
            kind, help_text = self._families[family]
            series = []
            for label_items, payload in sorted(
                self._samples[family], key=lambda sample: sample[0]
            ):
                value = (
                    payload.as_dict()
                    if isinstance(payload, StreamingHistogram)
                    else _json_value(payload)
                )
                series.append(
                    {"labels": dict(label_items), "value": value}
                )
            families[family] = {
                "type": kind,
                "help": help_text,
                "series": series,
            }
        return {"namespace": NAMESPACE, "families": families}


def _json_value(value: float) -> float | str | None:
    """Strict-JSON-safe sample value (allow_nan=False downstream)."""
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def build_export(
    registry: MetricsRegistry | None = None,
    monitors: dict[str, object] | None = None,
) -> PrometheusExport:
    """Assemble the full scrape snapshot.

    ``registry`` contributes every flat metric as a gauge.  ``monitors``
    maps a strategy label to its
    :class:`~repro.obs.runtime_telemetry.RuntimeMonitor`; the empty
    label exports unlabelled (single-run verbs), any other label lands
    on every series as ``strategy="<label>"``.
    """
    export = PrometheusExport()
    if registry is not None:
        snapshot = registry.snapshot()
        for name in sorted(snapshot):
            export.gauge(name, snapshot[name])
    for label in sorted(monitors or {}):
        monitor = (monitors or {})[label]
        if monitor is None:
            continue
        labels = {"strategy": label} if label else {}
        export.gauge(
            "query.progress",
            monitor.progress(),
            help_text="whole-plan fraction done",
            **labels,
        )
        for operator in sorted(
            monitor.operators.values(), key=lambda item: item.index
        ):
            op_labels = dict(labels)
            op_labels["op"] = operator.label
            op_labels["index"] = str(operator.index)
            export.gauge(
                "operator.rows_out",
                float(operator.rows_out),
                help_text="rows produced by the operator",
                **op_labels,
            )
            export.gauge(
                "operator.estimated_rows",
                operator.estimated_rows,
                help_text="live-refined cardinality estimate",
                **op_labels,
            )
            export.gauge(
                "operator.fraction_done",
                operator.fraction,
                help_text="per-operator fraction done",
                **op_labels,
            )
        for pred_id in sorted(
            monitor.predicates,
            key=lambda key: monitor.predicates[key].fingerprint,
        ):
            telemetry = monitor.predicates[pred_id]
            pred_labels = dict(labels)
            pred_labels["predicate"] = telemetry.predicate
            export.gauge(
                "predicate.evaluated",
                float(telemetry.evaluated),
                help_text="predicate evaluations",
                **pred_labels,
            )
            export.gauge(
                "predicate.observed_selectivity",
                telemetry.observed_selectivity,
                help_text="passed / evaluated so far",
                **pred_labels,
            )
            export.histogram(
                "predicate.cost",
                telemetry.cost,
                help_text="charged cost per evaluation",
                **pred_labels,
            )
        for key in sorted(
            monitor.latency,
            key=lambda item: (
                monitor.operators[item].index
                if item in monitor.operators
                else -1
            ),
        ):
            histogram = monitor.latency[key]
            operator = monitor.operators.get(key)
            if operator is None:
                continue
            op_labels = dict(labels)
            op_labels["op"] = operator.label
            op_labels["index"] = str(operator.index)
            export.histogram(
                "operator.pull_seconds",
                histogram,
                help_text="wall-clock seconds per GetNext pull",
                **op_labels,
            )
    return export


def export_metrics(path: str | Path, export: PrometheusExport) -> Path:
    """Write the snapshot to ``path``: ``.json`` suffix selects the JSON
    document, anything else the Prometheus text format."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    if target.suffix == ".json":
        target.write_text(
            json.dumps(export.as_json(), indent=2, sort_keys=False)
            + "\n"
        )
    else:
        target.write_text(export.render())
    return target
