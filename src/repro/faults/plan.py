"""Seeded, reproducible fault schedules.

A :class:`FaultSpec` describes one fault on one UDF; a :class:`FaultPlan`
is a whole schedule — the unit ``repro chaos`` replays. Schedules are
pure data: nothing here touches the catalog (that is the injector's job),
so a plan can be printed, serialised into a chaos report, and rebuilt
bit-identically from its seed.

Fault kinds:

``error``
    The function raises :class:`~repro.errors.UdfError` on calls
    ``first_call .. first_call + failures - 1`` (transient — later calls
    succeed, so bounded retries can recover) or on every call from
    ``first_call`` onward (permanent).
``latency``
    The function charges ``latency_units`` of simulated time on matching
    calls; results are unaffected.
``corrupt-stats``
    The function's *catalog metadata* (declared selectivity and/or
    per-call cost) is replaced with a hostile value — ``nan``, ``inf``, a
    negative, or an out-of-range number — at install time. The function
    itself still computes honestly; only the planner's inputs lie.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import ReproError

FAULT_KINDS = ("error", "latency", "corrupt-stats")

#: Hostile statistic values a generated ``corrupt-stats`` fault draws
#: from. Selectivities must land in [0, 1]; costs must be finite and
#: non-negative; each entry violates one of those contracts.
CORRUPT_SELECTIVITIES = (float("nan"), float("inf"), -0.25, 3.0)
CORRUPT_COSTS = (float("nan"), float("-inf"), -100.0, float("inf"))


@dataclass(frozen=True)
class FaultSpec:
    """One fault on one function. Immutable so schedules stay replayable."""

    function: str
    kind: str
    #: 1-based invocation index at which the fault starts firing.
    first_call: int = 1
    #: Consecutive failing calls for a transient ``error`` fault.
    failures: int = 1
    #: Transient errors stop after ``failures`` calls; permanent errors
    #: fire on every call from ``first_call`` onward.
    transient: bool = True
    #: For ``latency``: re-fire every Nth call after ``first_call``
    #: (``None`` = only the window/first call).
    every: int | None = None
    latency_units: float = 0.0
    #: ``corrupt-stats`` replacements (``None`` = leave that field alone).
    selectivity: float | None = None
    cost_per_call: float | None = None
    reason: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"choose one of {FAULT_KINDS}"
            )
        if self.first_call < 1:
            raise ReproError(
                f"first_call is a 1-based call index, got {self.first_call}"
            )
        if self.kind == "error" and self.failures < 1:
            raise ReproError(f"failures must be >= 1, got {self.failures}")

    def fires_on(self, call_index: int) -> bool:
        """Does this fault fire on the given 1-based invocation?"""
        if call_index < self.first_call:
            return False
        if self.kind == "error":
            if not self.transient:
                return True
            return call_index < self.first_call + self.failures
        if self.kind == "latency":
            if self.every is not None:
                return (call_index - self.first_call) % self.every == 0
            return call_index < self.first_call + max(1, self.failures)
        return False  # corrupt-stats is an install-time fault

    def describe(self) -> str:
        if self.kind == "error":
            if self.transient:
                return (
                    f"{self.function}: transient error on calls "
                    f"#{self.first_call}..#{self.first_call + self.failures - 1}"
                )
            return f"{self.function}: permanent error from call #{self.first_call}"
        if self.kind == "latency":
            cadence = (
                f"every {self.every} calls" if self.every else "once"
            )
            return (
                f"{self.function}: +{self.latency_units:g} latency units "
                f"from call #{self.first_call} ({cadence})"
            )
        parts = []
        if self.selectivity is not None:
            parts.append(f"selectivity={self.selectivity!r}")
        if self.cost_per_call is not None:
            parts.append(f"cost_per_call={self.cost_per_call!r}")
        return f"{self.function}: corrupted stats ({', '.join(parts)})"

    def as_dict(self) -> dict:
        data = {
            "function": self.function,
            "kind": self.kind,
            "first_call": self.first_call,
        }
        if self.kind == "error":
            data["transient"] = self.transient
            if self.transient:
                data["failures"] = self.failures
        if self.kind == "latency":
            data["latency_units"] = self.latency_units
            data["every"] = self.every
        if self.kind == "corrupt-stats":
            data["selectivity"] = _json_float(self.selectivity)
            data["cost_per_call"] = _json_float(self.cost_per_call)
        return data


def _json_float(value: float | None):
    if value is None:
        return None
    return value if math.isfinite(value) else repr(value)


#: Named generation profiles: which fault kinds a seeded plan draws from.
PROFILES = {
    "transient": ("error-transient", "latency"),
    "permanent": ("error-permanent",),
    "stats": ("corrupt-stats",),
    "mixed": (
        "error-transient",
        "error-permanent",
        "latency",
        "corrupt-stats",
    ),
}


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of faults plus optional planner faults.

    ``planner_faults`` maps strategy name -> failure reason; the
    degradation ladder consults it to simulate a placement strategy
    crashing, deterministically, without monkeypatching the registry.
    """

    seed: int
    specs: tuple[FaultSpec, ...] = ()
    planner_faults: dict[str, str] = field(default_factory=dict)

    def specs_for(self, function: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.function == function)

    def planner_fault(self, strategy: str) -> str | None:
        return self.planner_faults.get(strategy)

    def functions(self) -> list[str]:
        return sorted({spec.function for spec in self.specs})

    def recoverable(self, retries: int) -> bool:
        """Can bounded retries mask every runtime fault in this plan?

        True when no permanent error exists and every transient error's
        consecutive-failure window fits inside the retry budget. Latency
        and corrupted statistics never affect result rows (stats are
        clamped by the planner guardrails and plans stay semantically
        equivalent), so they do not make a plan unrecoverable.
        """
        for spec in self.specs:
            if spec.kind != "error":
                continue
            if not spec.transient:
                return False
            if spec.failures > retries:
                return False
        return True

    def describe(self) -> list[str]:
        lines = [spec.describe() for spec in self.specs]
        for strategy in sorted(self.planner_faults):
            lines.append(
                f"planner[{strategy}]: {self.planner_faults[strategy]}"
            )
        return lines

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
            "planner_faults": dict(sorted(self.planner_faults.items())),
        }

    @classmethod
    def generate(
        cls,
        seed: int,
        functions: list[str],
        profile: str = "mixed",
        max_faults: int = 3,
        planner_fault_rate: float = 0.0,
        strategies: tuple[str, ...] = (),
    ) -> "FaultPlan":
        """Draw a deterministic schedule from ``seed``.

        At most one ``error`` fault per function (so consecutive-failure
        windows never merge and :meth:`recoverable` stays exact), plus
        independent latency/stat-corruption faults. ``planner_fault_rate``
        optionally marks strategies as crashing for ladder tests.
        """
        if profile not in PROFILES:
            raise ReproError(
                f"unknown fault profile {profile!r}; "
                f"choose one of {sorted(PROFILES)}"
            )
        if not functions:
            raise ReproError("cannot generate faults without any functions")
        rng = random.Random(seed)
        menu = PROFILES[profile]
        specs: list[FaultSpec] = []
        errored: set[str] = set()
        count = rng.randint(1, max(1, max_faults))
        for _ in range(count):
            function = rng.choice(sorted(functions))
            choice = rng.choice(menu)
            if choice == "error-transient":
                if function in errored:
                    continue
                errored.add(function)
                specs.append(
                    FaultSpec(
                        function=function,
                        kind="error",
                        first_call=rng.randint(1, 12),
                        failures=rng.randint(1, 3),
                        transient=True,
                        reason=f"seeded transient fault (seed {seed})",
                    )
                )
            elif choice == "error-permanent":
                if function in errored:
                    continue
                errored.add(function)
                specs.append(
                    FaultSpec(
                        function=function,
                        kind="error",
                        first_call=rng.randint(1, 12),
                        transient=False,
                        reason=f"seeded permanent fault (seed {seed})",
                    )
                )
            elif choice == "latency":
                specs.append(
                    FaultSpec(
                        function=function,
                        kind="latency",
                        first_call=rng.randint(1, 8),
                        every=rng.choice([None, 2, 5]),
                        latency_units=float(rng.randint(1, 50)),
                    )
                )
            else:
                specs.append(
                    FaultSpec(
                        function=function,
                        kind="corrupt-stats",
                        selectivity=rng.choice(CORRUPT_SELECTIVITIES),
                        cost_per_call=rng.choice(CORRUPT_COSTS),
                    )
                )
        planner_faults: dict[str, str] = {}
        for strategy in strategies:
            if rng.random() < planner_fault_rate:
                planner_faults[strategy] = (
                    f"injected planner fault (seed {seed})"
                )
        return cls(
            seed=seed,
            specs=tuple(specs),
            planner_faults=planner_faults,
        )
