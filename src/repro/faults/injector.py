"""Install a :class:`~repro.faults.plan.FaultPlan` onto a catalog.

The injector rewires the registered
:class:`~repro.catalog.functions.UserFunction` objects *in place*: the
function body is wrapped with the fault schedule, and ``corrupt-stats``
faults overwrite the declared selectivity / per-call cost. Nothing else
in the system changes — the executor, the predicate analyzers, and both
cache modes all reach UDFs through ``catalog.functions.get(name)``, so
wrapping at the registry is complete coverage with zero call-site edits.

``install``/``uninstall`` are symmetric (originals are saved and
restored), and the injector is a context manager so chaos runs cannot
leak faults into later tests even when they raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.errors import ReproError, UdfError
from repro.faults.clock import SimulatedClock
from repro.faults.plan import FaultPlan, FaultSpec


@dataclass
class _Original:
    """Saved state of one wrapped function, for uninstall."""

    fn: Callable[..., object]
    selectivity: float
    cost_per_call: float


@dataclass
class InjectionStats:
    """What the injector actually did at run time."""

    errors_injected: int = 0
    latency_injected: int = 0
    stats_corrupted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "errors_injected": self.errors_injected,
            "latency_injected": self.latency_injected,
            "stats_corrupted": self.stats_corrupted,
        }


@dataclass
class FaultInjector:
    """Applies one fault plan to one catalog, reversibly."""

    plan: FaultPlan
    clock: SimulatedClock = field(default_factory=SimulatedClock)
    stats: InjectionStats = field(default_factory=InjectionStats)

    def __post_init__(self) -> None:
        self._originals: dict[str, _Original] = {}
        self._catalog: Catalog | None = None

    @property
    def installed(self) -> bool:
        return self._catalog is not None

    def install(self, catalog: Catalog) -> "FaultInjector":
        """Wrap every function the plan names; idempotence is an error."""
        if self.installed:
            raise ReproError("fault plan already installed")
        registry = catalog.functions
        for name in self.plan.functions():
            function = registry.get(name)  # UnknownFunctionError if absent
            self._originals[name] = _Original(
                fn=function.fn,
                selectivity=function.selectivity,
                cost_per_call=function.cost_per_call,
            )
            specs = self.plan.specs_for(name)
            for spec in specs:
                if spec.kind != "corrupt-stats":
                    continue
                if spec.selectivity is not None:
                    function.selectivity = spec.selectivity
                if spec.cost_per_call is not None:
                    function.cost_per_call = spec.cost_per_call
                self.stats.stats_corrupted += 1
            runtime_specs = tuple(
                spec for spec in specs if spec.kind != "corrupt-stats"
            )
            if runtime_specs:
                function.fn = self._wrap(function, runtime_specs)
        self._catalog = catalog
        return self

    def uninstall(self) -> None:
        """Restore every wrapped function to its saved state."""
        if self._catalog is None:
            return
        registry = self._catalog.functions
        for name, original in self._originals.items():
            function = registry.get(name)
            function.fn = original.fn
            function.selectivity = original.selectivity
            function.cost_per_call = original.cost_per_call
        self._originals.clear()
        self._catalog = None

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    def _wrap(
        self, function, specs: tuple[FaultSpec, ...]
    ) -> Callable[..., object]:
        """The faulty body: consult the schedule, then run the original.

        ``UserFunction.__call__`` increments ``calls`` *before* invoking
        the body, so inside the wrapper ``function.calls`` is the current
        1-based invocation index — exactly the schedule's currency.
        """
        original = function.fn
        injector = self

        def faulty(*args: object) -> object:
            index = function.calls
            for spec in specs:
                if spec.kind == "latency" and spec.fires_on(index):
                    injector.stats.latency_injected += 1
                    injector.clock.charge_latency(spec.latency_units)
            for spec in specs:
                if spec.kind == "error" and spec.fires_on(index):
                    injector.stats.errors_injected += 1
                    raise UdfError(
                        function.name,
                        call_index=index,
                        transient=spec.transient,
                        reason=spec.reason,
                    )
            return original(*args)

        return faulty
