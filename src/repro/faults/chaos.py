"""The chaos harness: seeded fault schedules against every strategy.

One :func:`run_chaos` call takes a workload, computes its fault-free
*oracle* rows once, then for each chaos seed generates a
:class:`~repro.faults.plan.FaultPlan`, installs it on the catalog, and
runs every requested strategy through the graceful-degradation ladder
and the containment-enabled executor. Each run is checked against the
robustness invariants:

* **Nothing escapes.** Planning and execution may only fail through
  :class:`~repro.errors.ReproError` subclasses surfaced as structured
  results — any other exception is a violation, as is an uncontained
  ``ReproError`` leaking out of the executor.
* **Recoverable ⇒ oracle-exact.** When the fault plan is recoverable
  under the retry budget (no permanent errors, every transient window
  within ``retries``), the run must complete with zero quarantined
  tuples and exactly the oracle's rows.
* **Unrecoverable ⇒ structured.** Under ``abort`` an exhausted UDF must
  produce a ``completed=False`` result with a populated ``error`` —
  never a traceback. Under ``skip-row``/``assume-fail`` the run must
  complete with the surviving rows a multiset-subset of the oracle;
  under ``assume-pass`` a multiset-superset.
* **Quarantine is honest.** A completed run with an empty quarantine
  must equal the oracle: every masked fault was genuinely recovered.

Latency and corrupted-statistics faults never change result rows: the
clock is simulated (latency only accrues virtual time) and the planner
guardrails clamp hostile statistics into plans that stay semantically
equivalent. Rows are compared in a canonical column order (sorted
tables, schema attribute order) so plans with different join orders
compare equal.

This module imports the optimizer and executor, so it must *not* be
re-exported from ``repro.faults.__init__`` (the executor's containment
layer imports ``repro.faults.clock``, which would close an import
cycle). Import it explicitly: ``from repro.faults.chaos import
run_chaos``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.adaptive.controller import AdaptivePolicy
from repro.bench.workloads import WORKLOADS, Workload, build_workload
from repro.catalog.datagen import build_database
from repro.database import Database
from repro.errors import ReproError
from repro.exec import Executor, FailurePolicy
from repro.exec.containment import DEFAULT_RETRIES, EXHAUSTION_POLICIES
from repro.faults.injector import FaultInjector
from repro.faults.plan import PROFILES, FaultPlan
from repro.obs.flightrec import (
    FlightRecorder,
    build_flight_dump,
    flight_path,
    write_flight_dump,
)
from repro.obs.provenance import ProvenanceLedger
from repro.obs.quality import catalog_drift
from repro.obs.runtime_telemetry import RuntimeMonitor
from repro.obs.tables import Column, Table
from repro.optimizer import optimize, optimize_degraded

#: Default chaos seeds — three distinct schedules per suite run.
DEFAULT_SEEDS = (7, 11, 13)

#: Strategies chaos exercises by default: the ladder's rungs plus the
#: over-eager baseline the paper warns about.
DEFAULT_CHAOS_STRATEGIES = (
    "pushdown",
    "pullrank",
    "migration",
    "exhaustive",
)

#: Ladder rungs eligible for injected planner faults. PushDown is the
#: documented floor of the degradation ladder — faulting it would make
#: "planning always lands somewhere" untestable.
FAULTABLE_STRATEGIES = ("exhaustive", "migration", "pullrank")


@dataclass
class ChaosOutcome:
    """One (seed, strategy) run under faults, plus its invariant audit."""

    seed: int
    strategy: str
    completed: bool = False
    error: str = ""
    row_count: int = 0
    #: ``equal`` | ``subset`` | ``superset`` | ``diverged`` | ``n/a``
    #: (multiset relation of the run's rows to the oracle's).
    rows_vs_oracle: str = "n/a"
    quarantined: int = 0
    retries: int = 0
    recovered: int = 0
    failures: int = 0
    errors_fired: int = 0
    backoff_units: float = 0.0
    latency_units: float = 0.0
    stats_clamped: int = 0
    #: Whole-plan progress at the end of the run (``None`` unless the
    #: suite ran with live telemetry): 1.0 on success, frozen at its
    #: abort-time value on DNF.
    progress: float | None = None
    #: The telemetry monitor's terminal state (``completed``/``aborted``;
    #: empty unless the suite ran with live telemetry).
    monitor_state: str = ""
    #: Ladder rungs that failed before a plan was produced.
    degraded: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: Path of the FLIGHT_*.json crash dump this run wrote (empty when
    #: the run completed or the suite ran without ``flight_dir``).
    flight_dump: str = ""
    #: Adaptive twin-run audit (``run_chaos(..., adaptive=True)``):
    #: the same (seed, strategy) executed again with mid-query
    #: re-optimization armed. ``adaptive_vs_static`` is the multiset
    #: relation of the adaptive run's rows to this outcome's rows —
    #: ``"equal"`` is the hard invariant whenever no error faults fired
    #: in either run; ``"n/a"`` when the comparison is not meaningful
    #: (either run DNF'd or error faults made the streams diverge
    #: legitimately).
    adaptive_completed: bool | None = None
    adaptive_error: str = ""
    adaptive_row_count: int = 0
    adaptive_rows_vs_oracle: str = "n/a"
    adaptive_vs_static: str = "n/a"
    adaptive_replans: int = 0
    adaptive_refusals: int = 0
    adaptive_errors_fired: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "strategy": self.strategy,
            "completed": self.completed,
            "error": self.error,
            "row_count": self.row_count,
            "rows_vs_oracle": self.rows_vs_oracle,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "recovered": self.recovered,
            "failures": self.failures,
            "errors_fired": self.errors_fired,
            "backoff_units": self.backoff_units,
            "latency_units": self.latency_units,
            "stats_clamped": self.stats_clamped,
            "progress": self.progress,
            "monitor_state": self.monitor_state,
            "degraded": list(self.degraded),
            "violations": list(self.violations),
            "flight_dump": self.flight_dump,
            "adaptive_completed": self.adaptive_completed,
            "adaptive_error": self.adaptive_error,
            "adaptive_row_count": self.adaptive_row_count,
            "adaptive_rows_vs_oracle": self.adaptive_rows_vs_oracle,
            "adaptive_vs_static": self.adaptive_vs_static,
            "adaptive_replans": self.adaptive_replans,
            "adaptive_refusals": self.adaptive_refusals,
            "adaptive_errors_fired": self.adaptive_errors_fired,
        }


@dataclass
class ChaosReport:
    """Everything one chaos suite run learned, JSON-serialisable."""

    workload: str
    scale: int
    db_seed: int
    profile: str
    policy: str
    retries: int
    strategies: tuple[str, ...]
    seeds: tuple[int, ...]
    executor: str = "row"
    #: Whether each run was paired with an adaptive twin (and the policy
    #: knobs it ran under).
    adaptive: bool = False
    drift_threshold: float | None = None
    max_replans: int | None = None
    oracle_rows: int = 0
    fault_plans: dict[int, dict] = field(default_factory=dict)
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    #: Per-seed drift audit: what the drift detector flagged on the
    #: corrupted catalog vs what the fault plan actually corrupted.
    drift: dict[int, dict] = field(default_factory=dict)

    @property
    def violations(self) -> list[str]:
        found = [
            f"seed {o.seed} {o.strategy}: {violation}"
            for o in self.outcomes
            for violation in o.violations
        ]
        # Observability invariant: every statistic a corrupt-stats fault
        # poisoned must be flagged by the drift detector. Containment
        # keeps corrupted stats from changing rows; this keeps them from
        # staying *invisible*.
        for seed in sorted(self.drift):
            for miss in self.drift[seed].get("missed", []):
                found.append(
                    f"seed {seed} drift: corrupted statistic {miss} "
                    "not flagged by the drift detector"
                )
        return found

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "db_seed": self.db_seed,
            "profile": self.profile,
            "policy": self.policy,
            "retries": self.retries,
            "strategies": list(self.strategies),
            "seeds": list(self.seeds),
            "executor": self.executor,
            "adaptive": self.adaptive,
            "drift_threshold": self.drift_threshold,
            "max_replans": self.max_replans,
            "oracle_rows": self.oracle_rows,
            "fault_plans": {
                str(seed): plan for seed, plan in self.fault_plans.items()
            },
            "drift": {
                str(seed): audit for seed, audit in self.drift.items()
            },
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "violations": self.violations,
            "passed": self.passed,
        }


def _canonical_project(db: Database, workload: Workload) -> list[tuple]:
    """A plan-independent output column order for row comparison."""
    return [
        (table, name)
        for table in sorted(workload.query.tables)
        for name in db.catalog.table(table).schema.attribute_names
    ]


def _workload_functions(workload: Workload) -> list[str]:
    """The UDF names the workload's predicates invoke — fault targets."""
    names: set[str] = set()
    for predicate in workload.query.predicates:
        names.update(predicate.expr.function_names())
    return sorted(names)


def _relation(rows: list[tuple], oracle: list[tuple]) -> str:
    """Multiset relation of a run's rows to the oracle's rows."""
    got, want = Counter(rows), Counter(oracle)
    if got == want:
        return "equal"
    if not got - want:
        return "subset"
    if not want - got:
        return "superset"
    return "diverged"


def _audit(
    outcome: ChaosOutcome,
    relation: str,
    recoverable: bool,
    policy: str,
) -> None:
    """Apply the robustness invariants; append violations in place."""
    if recoverable:
        if not outcome.completed:
            outcome.violations.append(
                f"recoverable plan did not complete: {outcome.error!r}"
            )
        elif outcome.quarantined:
            outcome.violations.append(
                f"recoverable plan quarantined {outcome.quarantined} rows"
            )
        elif relation != "equal":
            outcome.violations.append(
                f"recoverable plan rows {relation} oracle"
            )
        return
    if not outcome.completed:
        if policy != "abort":
            outcome.violations.append(
                f"policy {policy!r} must complete, got DNF: {outcome.error!r}"
            )
        elif not outcome.error:
            outcome.violations.append("DNF without a structured error")
        return
    # Completed under an unrecoverable plan: either the fault never
    # actually fired (clean run must equal the oracle) or the policy
    # decided some verdicts (quarantine must be honest about which way).
    if outcome.quarantined == 0:
        if relation != "equal":
            outcome.violations.append(
                f"clean run (no quarantine) rows {relation} oracle"
            )
        return
    if policy == "abort":
        outcome.violations.append(
            "abort policy completed with quarantined rows"
        )
    elif policy == "assume-pass":
        if relation not in ("equal", "superset"):
            outcome.violations.append(
                f"assume-pass rows {relation} oracle (need superset)"
            )
    elif relation not in ("equal", "subset"):
        outcome.violations.append(
            f"{policy} rows {relation} oracle (need subset)"
        )


def _audit_telemetry(outcome: ChaosOutcome, result, monitor) -> None:
    """The live-telemetry invariants under faults.

    Success ⇒ progress is exactly 1.0; abort ⇒ progress is frozen in
    [0, 1) with the monitor in ``aborted`` state carrying the run's
    structured reason. Either way the resource report must exist — a
    monitor that loses a run is as bad as a traceback.
    """
    progress = monitor.progress()
    if result.completed:
        if monitor.state != "completed":
            outcome.violations.append(
                f"telemetry: completed run left monitor in "
                f"state {monitor.state!r}"
            )
        elif progress != 1.0:
            outcome.violations.append(
                f"telemetry: completed run reports progress "
                f"{progress:.4f}, not 1.0"
            )
    else:
        if monitor.state != "aborted":
            outcome.violations.append(
                f"telemetry: DNF run left monitor in "
                f"state {monitor.state!r}, not 'aborted'"
            )
        elif not monitor.reason:
            outcome.violations.append(
                "telemetry: aborted monitor carries no structured reason"
            )
        elif not 0.0 <= progress < 1.0:
            outcome.violations.append(
                f"telemetry: aborted run reports progress "
                f"{progress:.4f}, not frozen below 1.0"
            )
    if result.resources is None:
        outcome.violations.append(
            "telemetry: execution produced no resource report"
        )


def run_chaos(
    workload_key: str,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    strategies: tuple[str, ...] = DEFAULT_CHAOS_STRATEGIES,
    policy: str = "abort",
    retries: int = DEFAULT_RETRIES,
    scale: int = 5,
    db_seed: int = 42,
    profile: str = "mixed",
    planner_fault_rate: float = 0.25,
    telemetry: bool = False,
    executor: str = "row",
    flight_dir: str | None = None,
    adaptive: bool = False,
    drift_threshold: float | None = None,
    max_replans: int | None = None,
) -> ChaosReport:
    """Run the chaos suite for one workload; returns the full report.

    Builds a private database (``scale``/``db_seed``), computes the
    fault-free oracle rows once, then per chaos seed installs a
    generated :class:`FaultPlan` and runs every strategy through
    :func:`~repro.optimizer.optimize_degraded` (so injected planner
    faults degrade down the ladder) and a containment-enabled
    :class:`~repro.exec.Executor`. Execution is unbudgeted: the only
    DNFs a chaos run may produce are UDF aborts, which keeps the
    invariants exact.

    ``telemetry=True`` attaches a fresh
    :class:`~repro.obs.runtime_telemetry.RuntimeMonitor` to every
    execution and audits its invariants under faults: a completed run's
    progress must end at exactly 1.0, an aborted one must be frozen
    with a structured reason — violations land in the report like any
    other invariant breach.

    ``executor`` selects the execution path (``"row"`` or ``"vector"``)
    for the oracle and every strategy run alike, so the
    subset/superset-vs-oracle audits hold under batching too.

    ``flight_dir`` attaches an execution
    :class:`~repro.obs.flightrec.FlightRecorder` (timestamped on the
    injector's simulated clock) to every strategy run; any run that
    dies serializes a ``FLIGHT_<workload>_seed<seed>_<strategy>.json``
    crash dump into the directory, its path recorded in the outcome's
    ``flight_dump`` — deterministic input for ``repro postmortem``.

    ``adaptive=True`` pairs every (seed, strategy) run with a *twin*
    execution on a freshly planned copy of the same query with mid-query
    re-optimization armed (``drift_threshold`` / ``max_replans``
    override the :class:`~repro.adaptive.AdaptivePolicy` defaults). The
    twin is audited against the same oracle invariants, and — the hard
    equivalence gate — whenever **no error faults fired in either run**
    (always true under ``--profile stats``, whose corruption is
    install-time only), the twin's row multiset must equal the static
    run's exactly: re-planning may move work, never rows. When error
    faults did fire, the two runs legitimately consume the fault
    schedule at different call indices and only the per-run oracle
    invariants apply.
    """
    if workload_key not in WORKLOADS:
        raise ReproError(
            f"unknown workload {workload_key!r}; "
            f"choose one of {sorted(WORKLOADS)}"
        )
    if profile not in PROFILES:
        raise ReproError(
            f"unknown fault profile {profile!r}; "
            f"choose one of {sorted(PROFILES)}"
        )
    if policy not in EXHAUSTION_POLICIES:
        raise ReproError(
            f"unknown on-exhaustion policy {policy!r}; "
            f"choose one of {EXHAUSTION_POLICIES}"
        )
    report = ChaosReport(
        workload=workload_key,
        scale=scale,
        db_seed=db_seed,
        profile=profile,
        policy=policy,
        retries=retries,
        strategies=tuple(strategies),
        seeds=tuple(seeds),
        executor=executor,
        adaptive=adaptive,
        drift_threshold=drift_threshold,
        max_replans=max_replans,
    )
    policy_kwargs = {}
    if drift_threshold is not None:
        policy_kwargs["drift_threshold"] = drift_threshold
    if max_replans is not None:
        policy_kwargs["max_replans"] = max_replans
    adaptive_policy = AdaptivePolicy(**policy_kwargs) if adaptive else None

    db = build_database(scale=scale, seed=db_seed)
    workload = build_workload(db, workload_key)
    project = _canonical_project(db, workload)
    functions = _workload_functions(workload)

    oracle_plan = optimize(db, workload.query, strategy="pushdown")
    oracle = sorted(
        Executor(db, executor=executor)
        .execute(oracle_plan.plan, project=project)
        .rows
    )
    report.oracle_rows = len(oracle)

    failure_policy = FailurePolicy(retries=retries, on_exhausted=policy)
    for seed in seeds:
        fault_plan = FaultPlan.generate(
            seed,
            functions,
            profile=profile,
            planner_fault_rate=planner_fault_rate,
            strategies=FAULTABLE_STRATEGIES,
        )
        report.fault_plans[seed] = {
            **fault_plan.as_dict(),
            "described": fault_plan.describe(),
        }
        recoverable = fault_plan.recoverable(retries)
        injector = FaultInjector(fault_plan)
        with injector.install(db.catalog):
            # Recompile so corrupted catalog statistics reach the
            # compiled predicates — the guardrails' actual input.
            chaos_query = build_workload(db, workload_key).query
            # Drift audit: with the faults installed, every corrupted
            # declaration must be visible to the drift detector (all
            # generated corruptions are invalid-by-domain, so no
            # observations are needed to catch them).
            findings = catalog_drift(db.catalog, names=functions)
            corrupted = {
                (spec.function, fld)
                for spec in fault_plan.specs
                if spec.kind == "corrupt-stats"
                for fld, value in (
                    ("selectivity", spec.selectivity),
                    ("cost_per_call", spec.cost_per_call),
                )
                if value is not None
            }
            flagged = {(f.subject, f.field) for f in findings}
            report.drift[seed] = {
                "findings": [f.as_dict() for f in findings],
                "described": [f.describe() for f in findings],
                "corrupted": sorted(
                    f"{name}.{fld}" for name, fld in corrupted
                ),
                "missed": sorted(
                    f"{name}.{fld}" for name, fld in corrupted - flagged
                ),
            }
            for strategy in strategies:
                outcome = ChaosOutcome(seed=seed, strategy=strategy)
                report.outcomes.append(outcome)
                ledger = ProvenanceLedger()
                try:
                    optimized = optimize_degraded(
                        db,
                        chaos_query,
                        strategy=strategy,
                        fault_plan=fault_plan,
                        ledger=ledger,
                    )
                except ReproError as error:
                    # PushDown is never faulted, so the ladder must
                    # always land somewhere: reaching here is a bug.
                    outcome.error = f"planner: {error}"
                    outcome.violations.append(
                        f"planning failed despite ladder: {error}"
                    )
                    continue
                except Exception as error:  # noqa: BLE001 — the point
                    outcome.error = f"uncaught: {error}"
                    outcome.violations.append(
                        f"planning raised non-Repro "
                        f"{type(error).__name__}: {error}"
                    )
                    continue
                outcome.degraded = list(
                    optimized.notes.get("degraded", [])
                )
                outcome.stats_clamped = optimized.notes.get(
                    "stats_clamped", 0
                )
                monitor = RuntimeMonitor() if telemetry else None
                recorder = (
                    FlightRecorder(clock=injector.clock)
                    if flight_dir is not None
                    else None
                )
                runner = Executor(
                    db,
                    failure_policy=failure_policy,
                    clock=injector.clock,
                    monitor=monitor,
                    executor=executor,
                    flight=recorder,
                )
                fired_before = injector.stats.errors_injected
                clock_before = injector.clock.latency_units
                try:
                    result = runner.execute(
                        optimized.plan, project=project
                    )
                except Exception as error:  # noqa: BLE001 — the point
                    kind = (
                        "uncontained Repro"
                        if isinstance(error, ReproError)
                        else "non-Repro"
                    )
                    outcome.error = f"uncaught: {error}"
                    outcome.violations.append(
                        f"execution raised {kind} "
                        f"{type(error).__name__}: {error}"
                    )
                    continue
                outcome.completed = result.completed
                outcome.error = result.error
                outcome.row_count = result.row_count
                outcome.errors_fired = (
                    injector.stats.errors_injected - fired_before
                )
                outcome.latency_units = (
                    injector.clock.latency_units - clock_before
                )
                quarantine = result.quarantine
                if quarantine is not None:
                    outcome.quarantined = int(
                        result.metrics.get("udf.quarantined", 0)
                    )
                    outcome.retries = quarantine.retries
                    outcome.recovered = quarantine.recovered
                    outcome.failures = quarantine.failures
                    outcome.backoff_units = quarantine.backoff_units
                relation = (
                    _relation(sorted(result.rows), oracle)
                    if result.completed
                    else "n/a"
                )
                outcome.rows_vs_oracle = relation
                _audit(outcome, relation, recoverable, policy)
                if monitor is not None:
                    outcome.progress = round(monitor.progress(), 6)
                    outcome.monitor_state = monitor.state
                    _audit_telemetry(outcome, result, monitor)
                if recorder is not None and not result.completed:
                    document = build_flight_dump(
                        recorder,
                        workload=workload_key,
                        reason=result.error,
                        executor=executor,
                        strategy=strategy,
                        seed=seed,
                        result=result,
                        monitor=monitor,
                        ledger=ledger,
                        clamped_charges=int(db.meter.clamped_charges),
                    )
                    target = write_flight_dump(
                        flight_path(
                            flight_dir,
                            workload_key,
                            suffix=f"seed{seed}_{strategy}",
                        ),
                        document,
                    )
                    outcome.flight_dump = str(target)
                if adaptive_policy is not None:
                    _run_adaptive_twin(
                        db,
                        chaos_query,
                        workload_key,
                        strategy,
                        fault_plan,
                        outcome,
                        result,
                        oracle,
                        project,
                        injector,
                        failure_policy,
                        adaptive_policy,
                        recoverable=recoverable,
                        policy=policy,
                        executor=executor,
                        flight_dir=flight_dir,
                        seed=seed,
                    )
    return report


def _run_adaptive_twin(
    db,
    chaos_query,
    workload_key: str,
    strategy: str,
    fault_plan,
    outcome: ChaosOutcome,
    static_result,
    oracle: list[tuple],
    project,
    injector,
    failure_policy,
    adaptive_policy,
    *,
    recoverable: bool,
    policy: str,
    executor: str,
    flight_dir: str | None,
    seed: int,
) -> None:
    """Execute the adaptive twin of one chaos run and audit it in place.

    Plans fresh (the static run's plan must stay pristine — an adaptive
    run re-places predicates on the live plan object); planner faults
    are deterministic per (fault plan, strategy), so the twin degrades
    down the same ladder. Violations land on ``outcome`` prefixed
    ``adaptive:`` so one report row carries both runs' verdicts.
    """
    try:
        optimized = optimize_degraded(
            db, chaos_query, strategy=strategy, fault_plan=fault_plan
        )
    except Exception as error:  # noqa: BLE001 — symmetric with static
        outcome.adaptive_error = f"planner: {error}"
        outcome.violations.append(
            f"adaptive: twin planning failed after static planning "
            f"succeeded: {error}"
        )
        return
    ledger = ProvenanceLedger()
    recorder = (
        FlightRecorder(clock=injector.clock)
        if flight_dir is not None
        else None
    )
    runner = Executor(
        db,
        failure_policy=failure_policy,
        clock=injector.clock,
        executor=executor,
        flight=recorder,
        adaptive=adaptive_policy,
        ledger=ledger,
    )
    fired_before = injector.stats.errors_injected
    try:
        result = runner.execute(optimized.plan, project=project)
    except Exception as error:  # noqa: BLE001 — the point
        kind = (
            "uncontained Repro"
            if isinstance(error, ReproError)
            else "non-Repro"
        )
        outcome.adaptive_error = f"uncaught: {error}"
        outcome.violations.append(
            f"adaptive: execution raised {kind} "
            f"{type(error).__name__}: {error}"
        )
        return
    outcome.adaptive_completed = result.completed
    outcome.adaptive_error = result.error
    outcome.adaptive_row_count = result.row_count
    outcome.adaptive_errors_fired = (
        injector.stats.errors_injected - fired_before
    )
    report = result.adaptive
    if report is not None:
        outcome.adaptive_replans = report.replans
        outcome.adaptive_refusals = report.refusals
    relation = (
        _relation(sorted(result.rows), oracle)
        if result.completed
        else "n/a"
    )
    outcome.adaptive_rows_vs_oracle = relation
    # The twin must honour the same oracle invariants as any run.
    audit = ChaosOutcome(seed=outcome.seed, strategy=strategy)
    audit.completed = result.completed
    audit.error = result.error
    audit.quarantined = int(result.metrics.get("udf.quarantined", 0))
    _audit(audit, relation, recoverable, policy)
    outcome.violations.extend(
        f"adaptive: {violation}" for violation in audit.violations
    )
    # The hard equivalence gate: no error faults in either run means the
    # two executions saw identical verdict streams, so re-planning must
    # be row-invisible. (Error faults fire by call index; the two runs
    # consume the schedule differently, making comparison meaningless.)
    if static_result.completed and result.completed:
        if outcome.errors_fired == 0 and outcome.adaptive_errors_fired == 0:
            twin_relation = _relation(
                sorted(result.rows), sorted(static_result.rows)
            )
            outcome.adaptive_vs_static = twin_relation
            if twin_relation != "equal":
                outcome.violations.append(
                    f"adaptive-rows-diverged: adaptive run's rows "
                    f"{twin_relation} the static run's "
                    f"({result.row_count} vs {static_result.row_count}) "
                    f"with no error faults fired"
                )
    if recorder is not None and not result.completed:
        document = build_flight_dump(
            recorder,
            workload=workload_key,
            reason=result.error,
            executor=executor,
            strategy=strategy,
            seed=seed,
            result=result,
            ledger=ledger,
            clamped_charges=int(db.meter.clamped_charges),
        )
        write_flight_dump(
            flight_path(
                flight_dir,
                workload_key,
                suffix=f"seed{seed}_{strategy}_adaptive",
            ),
            document,
        )


def format_chaos_report(report: ChaosReport) -> str:
    """Human-readable chaos report: fault plans, per-run table, verdict."""
    lines = [
        f"chaos: {report.workload} scale={report.scale} "
        f"db-seed={report.db_seed} profile={report.profile} "
        f"policy={report.policy} retries={report.retries}",
        f"oracle: {report.oracle_rows} rows (fault-free pushdown)",
    ]
    for seed in report.seeds:
        plan = report.fault_plans.get(seed, {})
        lines.append(f"seed {seed}:")
        described = plan.get("described", [])
        if not described:
            lines.append("  (no faults drawn)")
        for fault in described:
            lines.append(f"  fault: {fault}")
        audit = report.drift.get(seed)
        if audit and audit.get("corrupted"):
            missed = audit.get("missed", [])
            verdict = (
                f"MISSED {missed}" if missed else "all flagged"
            )
            lines.append(
                f"  drift: {len(audit.get('findings', []))} finding(s) "
                f"for {len(audit['corrupted'])} corrupted statistic(s) "
                f"— {verdict}"
            )
            for description in audit.get("described", []):
                lines.append(f"  drift: {description}")
    table = Table(
        [
            Column("seed", 5),
            Column("strategy", 10, align="left", gap=2),
            Column("status", 9, align="left"),
            Column("rows", 5),
            Column("vs-oracle", 9, align="left"),
            Column("quar", 5),
            Column("retry", 5),
            Column("fired", 5),
            Column("verdict", gap=2),
        ]
    )
    for o in report.outcomes:
        status = "ok" if o.completed else "DNF"
        if o.violations:
            verdict = "VIOLATION: " + o.violations[0]
        elif o.degraded:
            verdict = f"pass (degraded x{len(o.degraded)})"
        else:
            verdict = "pass"
        if o.progress is not None:
            verdict += f" [{o.progress * 100.0:.0f}%]"
        table.row(
            o.seed,
            o.strategy,
            status,
            o.row_count,
            o.rows_vs_oracle,
            o.quarantined,
            o.retries,
            o.errors_fired,
            verdict,
        )
    lines.append(table.render())
    if report.adaptive:
        lines.append(
            "adaptive twins (same runs, mid-query re-optimization armed):"
        )
        for o in report.outcomes:
            status = (
                "ok" if o.adaptive_completed
                else ("DNF" if o.adaptive_completed is not None else "—")
            )
            lines.append(
                f"  seed {o.seed} {o.strategy}: {status} "
                f"rows={o.adaptive_row_count} "
                f"vs-static={o.adaptive_vs_static} "
                f"replans={o.adaptive_replans} "
                f"refusals={o.adaptive_refusals}"
            )
    for o in report.outcomes:
        if o.flight_dump:
            lines.append(f"flight dump: {o.flight_dump}")
    lines.append(
        f"result: {'PASS' if report.passed else 'FAIL'} "
        f"({len(report.outcomes)} runs, "
        f"{len(report.violations)} violations)"
    )
    return "\n".join(lines)
