"""Deterministic fault injection and chaos testing.

Arbitrary user-defined predicates are the paper's whole premise — and in
any production setting arbitrary UDFs fail, hang, and lie about their
statistics. This package makes those failure modes *reproducible*:

* :mod:`repro.faults.clock` — a :class:`SimulatedClock` so injected
  latency and retry backoff advance virtual time, never wall-clock;
* :mod:`repro.faults.plan` — :class:`FaultSpec` (one function's failure
  schedule: raise on the Nth call, transient vs permanent, injected
  latency, corrupted selectivity/cost statistics) and :class:`FaultPlan`,
  a seeded generator of whole schedules;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which installs a
  plan onto ``catalog.functions`` by wrapping the registered
  :class:`~repro.catalog.functions.UserFunction` objects in place, so no
  executor or optimizer call site changes;
* :mod:`repro.faults.chaos` — the ``repro chaos`` runner: execute every
  strategy under a seeded schedule, compare against the fault-free
  oracle, and check the containment invariants.

Everything is seeded and deterministic: the same ``(seed, functions)``
pair always yields the same schedule, so a chaos failure is replayable
with one command.
"""

# NOTE: ``repro.faults.chaos`` (the ``repro chaos`` runner) is *not*
# imported here: it depends on the executor and optimizer, which depend
# back on :mod:`repro.faults.clock` via the containment layer. Import it
# explicitly — ``from repro.faults.chaos import run_chaos`` — at the call
# site (the CLI and the chaos suite both do).
from repro.faults.clock import SimulatedClock, backoff_schedule
from repro.faults.injector import FaultInjector, InjectionStats
from repro.faults.plan import PROFILES, FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectionStats",
    "PROFILES",
    "SimulatedClock",
    "backoff_schedule",
]
