"""A simulated clock: virtual time for latency and backoff.

Injected UDF latency and retry backoff must not slow the test suite down
or make runs machine-dependent, so neither ever sleeps. Both advance a
:class:`SimulatedClock` instead, in the same charged-cost units the rest
of the reproduction uses (random-I/O equivalents), and reports surface
the virtual total next to the meter's charge.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulatedClock:
    """Monotonic virtual time, advanced explicitly and never by sleeping."""

    now: float = 0.0
    #: Units attributed to injected UDF latency.
    latency_units: float = field(default=0.0, init=False)
    #: Units attributed to retry backoff waits.
    backoff_units: float = field(default=0.0, init=False)

    def advance(self, units: float) -> float:
        """Advance virtual time by ``units`` and return the new reading."""
        if units < 0:
            raise ValueError(f"cannot advance time by {units}")
        self.now += units
        return self.now

    def charge_latency(self, units: float) -> None:
        self.latency_units += units
        self.advance(units)

    def charge_backoff(self, units: float) -> None:
        self.backoff_units += units
        self.advance(units)

    def reset(self) -> None:
        self.now = 0.0
        self.latency_units = 0.0
        self.backoff_units = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "now": self.now,
            "latency_units": self.latency_units,
            "backoff_units": self.backoff_units,
        }


def backoff_schedule(
    base: float, retries: int, multiplier: float = 2.0
) -> list[float]:
    """Exponential backoff waits for ``retries`` attempts: base, 2·base, …

    Deterministic (no jitter): chaos runs must replay identically given a
    seed, and the clock is simulated anyway — jitter would only blur
    assertions without modelling anything the charged-cost world observes.
    """
    if retries <= 0:
        return []
    return [base * multiplier**attempt for attempt in range(retries)]
