"""The adaptive robustness bench: misestimation scenarios, gated.

Runs every :mod:`repro.adaptive.workloads` scenario twice — once static,
once with the adaptive controller — and checks the expectations that
make mid-query re-optimization trustworthy rather than merely exciting:

* **Correctness, always**: the adaptive run's row multiset must equal
  the static run's, for every scenario. Re-planning the suffix may
  change *where* work happens, never *what* comes out.
* **``improves`` scenarios**: adaptive must record at least one re-plan
  *and* finish with strictly lower charged cost than the static plan —
  the paper's rank arithmetic, applied mid-flight, must actually pay.
* **``neutral`` scenarios**: adaptive must record zero re-plans and
  charge *exactly* what the static run charges — the controller's taps
  and feedback plumbing are free when nothing drifts, so leaving
  ``--adaptive`` on for honest workloads costs nothing.

The run is written as ``BENCH_adapt.json`` (same ``schema_version`` /
``environment`` stamp as the per-workload artifacts, scenario records
instead of strategy records) so CI can upload and archive it next to the
q1–q5 baselines. Gate violations are returned as strings; the CLI exits
nonzero when any exist.

Scale floor: drift can only trigger once the misestimated predicate has
been *observed* ``min_samples`` times before enough of the stream has
already flowed past. Below ``scale≈60`` the ``adapt_drift`` join output
never reaches the sample floor and the bench cannot demonstrate a win,
so the bench refuses scales below :data:`MIN_ADAPT_SCALE` rather than
reporting a vacuous pass.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.adaptive.controller import AdaptivePolicy
from repro.adaptive.workloads import ADAPT_WORKLOADS, build_adapt_workload
from repro.catalog.datagen import build_database
from repro.errors import ArtifactError
from repro.exec import Executor
from repro.obs.artifacts import (
    SCHEMA_VERSION,
    _json_safe,
    default_environment,
    plan_fingerprint,
)
from repro.obs.flightrec import (
    FlightRecorder,
    build_flight_dump,
    flight_path,
    write_flight_dump,
)
from repro.obs.provenance import ProvenanceLedger
from repro.optimizer.optimizer import optimize

#: The artifact's conventional name next to ``BENCH_q1.json`` et al.
ADAPT_ARTIFACT = "BENCH_adapt.json"

#: Default scale: large enough that drift triggers with most of the
#: stream still ahead (see module docstring), small enough to run in
#: seconds.
DEFAULT_ADAPT_SCALE = 100

#: Below this the drift scenario cannot reach the observation floor.
MIN_ADAPT_SCALE = 60


def _run_one(db, plan, *, adaptive, policy, flight=None):
    """One execution; returns (result, ledger)."""
    ledger = ProvenanceLedger()
    executor = Executor(
        db,
        adaptive=policy if adaptive else None,
        ledger=ledger,
        flight=flight,
    )
    result = executor.execute(plan)
    return result, ledger


def _row_multiset(result):
    return sorted(tuple(row) for row in result.rows)


def run_adapt_bench(
    *,
    scale: int = DEFAULT_ADAPT_SCALE,
    seed: int = 42,
    strategy: str = "migration",
    drift_threshold: float | None = None,
    max_replans: int | None = None,
    flight_dir=None,
) -> tuple[dict, list[str]]:
    """Run the family; return ``(artifact_document, gate_violations)``.

    ``flight_dir`` (optional) receives one flight dump per adaptive run
    (``FLIGHT_<scenario>_adaptive.json``) so CI can archive the
    re-plan's in-flight event trail alongside the artifact.
    """
    if scale < MIN_ADAPT_SCALE:
        raise ArtifactError(
            f"adapt bench needs scale >= {MIN_ADAPT_SCALE} (drift must be "
            f"observable before the stream runs dry); got {scale}"
        )
    policy_kwargs = {}
    if drift_threshold is not None:
        policy_kwargs["drift_threshold"] = drift_threshold
    if max_replans is not None:
        policy_kwargs["max_replans"] = max_replans
    policy = AdaptivePolicy(**policy_kwargs)

    scenarios: dict[str, dict] = {}
    violations: list[str] = []
    for key in ADAPT_WORKLOADS:
        # Fresh database per execution: the adaptive run may re-place
        # predicates on the live plan, so static and adaptive must never
        # share a plan object (or a function registry's call counters).
        static_db = build_database(scale=scale, seed=seed)
        static_plan = optimize(
            static_db, build_adapt_workload(static_db, key).query,
            strategy=strategy,
        ).plan
        fingerprint = plan_fingerprint(static_plan)
        static_result, _ = _run_one(
            static_db, static_plan, adaptive=False, policy=policy
        )

        adaptive_db = build_database(scale=scale, seed=seed)
        scenario = build_adapt_workload(adaptive_db, key)
        adaptive_plan = optimize(
            adaptive_db, scenario.query, strategy=strategy
        ).plan
        flight = FlightRecorder()
        adaptive_result, ledger = _run_one(
            adaptive_db, adaptive_plan, adaptive=True, policy=policy,
            flight=flight,
        )
        report = adaptive_result.adaptive

        rows_equal = _row_multiset(static_result) == _row_multiset(
            adaptive_result
        )
        charged_delta = adaptive_result.charged - static_result.charged
        ledger_replans = len(ledger.events_of("plan.replan"))
        record = {
            "title": scenario.title,
            "expectation": scenario.expectation,
            "declared": scenario.declared,
            "realized": scenario.realized,
            "fingerprint": fingerprint,
            "static": {
                "charged": static_result.charged,
                "rows": static_result.row_count,
                "function_calls": int(static_result.metrics.get("function_calls", 0)),
            },
            "adaptive": {
                "charged": adaptive_result.charged,
                "rows": adaptive_result.row_count,
                "function_calls": int(adaptive_result.metrics.get("function_calls", 0)),
                "report": report.as_dict() if report is not None else None,
                "ledger_replan_events": ledger_replans,
            },
            "charged_delta": charged_delta,
            "rows_equal": rows_equal,
        }
        scenarios[key] = record

        replans = report.replans if report is not None else 0
        if not rows_equal:
            violations.append(
                f"{key}: adaptive row multiset diverged from static "
                f"({adaptive_result.row_count} vs "
                f"{static_result.row_count} rows)"
            )
        if scenario.expectation == "improves":
            if replans < 1:
                violations.append(
                    f"{key}: expected >= 1 re-plan on the misestimated "
                    f"stream, recorded {replans}"
                )
            if not charged_delta < 0:
                violations.append(
                    f"{key}: adaptive must beat the static plan's charged "
                    f"cost, but charged {adaptive_result.charged:.1f} vs "
                    f"{static_result.charged:.1f}"
                )
            if ledger_replans < 1:
                violations.append(
                    f"{key}: re-plan happened but no plan.replan ledger "
                    "event was recorded"
                )
        else:  # neutral
            if replans != 0:
                violations.append(
                    f"{key}: honest/tolerable stats must trigger zero "
                    f"re-plans, recorded {replans}"
                )
            if adaptive_result.charged != static_result.charged:
                violations.append(
                    f"{key}: zero-replan adaptive run must charge exactly "
                    f"the static cost ({adaptive_result.charged:.3f} vs "
                    f"{static_result.charged:.3f})"
                )

        if flight_dir is not None:
            dump = build_flight_dump(
                flight,
                workload=key,
                reason="adapt-bench adaptive run (not an abort)",
                strategy=strategy,
                seed=seed,
                result=adaptive_result,
                ledger=ledger,
            )
            write_flight_dump(
                flight_path(flight_dir, key, suffix="adaptive"), dump
            )

    document = {
        "schema_version": SCHEMA_VERSION,
        "workload": "adapt",
        "environment": default_environment(scale=scale, seed=seed),
        "policy": {
            "drift_threshold": policy.drift_threshold,
            "max_replans": policy.max_replans,
            "min_samples": policy.min_samples,
        },
        "strategy": strategy,
        "scenarios": scenarios,
        "violations": list(violations),
    }
    return _json_safe(document), violations


def write_adapt_artifact(path, document: dict) -> Path:
    """Write the bench document; ``path`` may be a directory."""
    target = Path(path)
    if target.suffix != ".json":
        target = target / ADAPT_ARTIFACT
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return target


def format_adapt_report(document: dict) -> str:
    """Human-readable table of one bench document."""
    lines = []
    env = document.get("environment", {})
    policy = document.get("policy", {})
    lines.append(
        f"== adaptive robustness bench "
        f"(scale {env.get('scale')}, seed {env.get('seed')}, "
        f"threshold {policy.get('drift_threshold')}, "
        f"max replans {policy.get('max_replans')}) =="
    )
    header = (
        f"{'scenario':<14} {'declared':>8} {'realized':>8} "
        f"{'static':>12} {'adaptive':>12} {'delta':>8} "
        f"{'replans':>7} {'rows=':>5}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key, record in document.get("scenarios", {}).items():
        static = record["static"]["charged"]
        adaptive = record["adaptive"]["charged"]
        delta = (adaptive - static) / static if static else 0.0
        report = record["adaptive"].get("report") or {}
        lines.append(
            f"{key:<14} {record['declared']:>8.2f} "
            f"{record['realized']:>8.2f} {static:>12.1f} "
            f"{adaptive:>12.1f} {delta:>+7.1%} "
            f"{report.get('replans', 0):>7} "
            f"{'yes' if record['rows_equal'] else 'NO':>5}"
        )
    violations = document.get("violations", [])
    if violations:
        lines.append("")
        lines.append("GATE VIOLATIONS:")
        for violation in violations:
            lines.append(f"  - {violation}")
    else:
        lines.append("")
        lines.append(
            "all gates hold: adaptive wins under misestimation, stays "
            "inert when the catalog is honest, rows identical throughout"
        )
    return "\n".join(lines)
