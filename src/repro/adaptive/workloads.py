"""Seeded misestimation workloads: where static placement goes wrong.

The ADAPT family exists to exercise mid-query re-optimization, so each
scenario plants a *controlled* catalog lie and pairs it with an honest
twin. The query shape is chosen so the lie flips exactly one placement
decision — never the join order — because the adaptive controller
re-plans only the unexecuted suffix of a fixed join skeleton:

* ``adaptjoin10(t2.ua1, t3.ua1)`` — an expensive join predicate
  (cost 10/pair, honest selectivity 0.002/pair). Per outer tuple the
  join filters (``0.002 × |t3| < 1``) at a large per-tuple cost, so its
  rank ``(s-1)/c`` lands in the same magnitude band as an expensive
  selection's — the interesting regime where a selectivity lie flips
  pullup vs pushdown. A non-equijoin also forces a nested-loop join,
  which is *not* a pipeline breaker, so the flip stays inside the
  adaptive controller's safe-move region.
* ``adaptliar100(t2.ua1)`` — the misestimated selection (cost
  100/call). Its *realized* selectivity is always ~0.40; what each
  scenario varies is the *declared* one. Declared 0.99 ranks the
  predicate just above the join (pullup); the truth ranks it below
  (pushdown). The argument column is unique (``ua1``), so the realized
  rate concentrates tightly around 0.40 and honest scenarios stay
  honest — low-distinct columns like ``u20`` would quantize the
  realized rate onto a handful of values and make "honest" a lie at
  small scales.

Scenarios (same SQL, same data, different declarations):

``adapt_drift``
    Declared 0.99 (q-error ~2.4 > the 2.0 trigger threshold). The
    static plan hoists the liar above the join and pays the expensive
    join on every unfiltered outer tuple; adaptive detects the drift at
    a row milestone and pushes the predicate down for the remaining
    rows. The bench gate: adaptive charged < static charged, ≥1 replan.
``adapt_honest``
    Declared 0.40 — the honest twin. Placement starts correct, nothing
    drifts, and the gate is the *other* direction: zero re-plans, and
    charges identical to the non-adaptive run.
``adapt_mild``
    Declared 0.60 (q-error ~1.45 < threshold). Wrong, but within
    tolerance — the guardrail gate: drift below the threshold must not
    trigger churn, so zero re-plans here too.

Registered separately from :data:`repro.bench.workloads.WORKLOADS` so
the q1–q5/qor baselines (and their artifacts) are untouched by this
family's extra function registrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.functions import synthetic_boolean
from repro.errors import ArtifactError
from repro.optimizer.query import Query
from repro.sql import compile_query

#: The one query shape every ADAPT scenario shares (see module docstring
#: for why this shape and not, say, q1's equijoin).
ADAPT_SQL = (
    "SELECT * FROM t2, t3 "
    "WHERE adaptjoin10(t2.ua1, t3.ua1) AND adaptliar100(t2.ua1)"
)

#: What the expensive selection actually does, in every scenario.
REALIZED_SELECTIVITY = 0.40

#: The expensive join's honest per-pair selectivity. ``0.002 × |t3|``
#: must stay below 1 for the join to filter per outer tuple; at the
#: bench's default scale 100 it is 0.6.
JOIN_SELECTIVITY = 0.002


@dataclass(frozen=True)
class AdaptWorkload:
    """One misestimation scenario: a declaration and an expectation."""

    key: str
    title: str
    #: What the catalog is told ``adaptliar100`` selects.
    declared: float
    #: ``"improves"`` — adaptive must beat the static plan's charged
    #: cost with ≥1 recorded re-plan; ``"neutral"`` — adaptive must
    #: trigger zero re-plans and charge exactly what static charges.
    expectation: str
    diagnostic: str
    query: Query | None = field(default=None, compare=False)

    @property
    def realized(self) -> float:
        return REALIZED_SELECTIVITY


_SCENARIOS = (
    AdaptWorkload(
        key="adapt_drift",
        title="declared 0.99, realized 0.40: drift past the threshold",
        declared=0.99,
        expectation="improves",
        diagnostic=(
            "static migration hoists the liar above the expensive join "
            "(declared rank -0.0001 beats the join's); mid-query feedback "
            "reveals q-error ~2.4 and the suffix re-plan pushes it down"
        ),
    ),
    AdaptWorkload(
        key="adapt_honest",
        title="declared 0.40, realized 0.40: the honest twin",
        declared=REALIZED_SELECTIVITY,
        expectation="neutral",
        diagnostic=(
            "placement starts correct; the adaptive run must observe, "
            "never interfere — zero re-plans, charges identical to the "
            "static run"
        ),
    ),
    AdaptWorkload(
        key="adapt_mild",
        title="declared 0.60, realized 0.40: drift within tolerance",
        declared=0.60,
        expectation="neutral",
        diagnostic=(
            "q-error ~1.45 stays under the 2.0 trigger threshold; the "
            "hysteresis gate — tolerable misestimates must not cause "
            "re-plan churn"
        ),
    ),
)

#: key -> scenario, in definition order.
ADAPT_WORKLOADS = {scenario.key: scenario for scenario in _SCENARIOS}


def ensure_adapt_functions(db, declared: float) -> None:
    """Register the ADAPT pair with ``declared`` as the lie (idempotent).

    First registration per database wins, like
    :func:`repro.bench.workloads.ensure_workload_functions` — which is
    what rebuild-after-``apply_feedback`` needs: re-registering would
    clobber injected statistics. Scenarios carry *different* declared
    selectivities for the same name, so each scenario must be built
    against a fresh database. Seeds are pinned off ``db.seed`` so
    realized behaviour is deterministic per seed and unchanged by the
    declaration.
    """
    functions = db.catalog.functions
    if "adaptjoin10" not in functions:
        functions.register(
            "adaptjoin10",
            synthetic_boolean(JOIN_SELECTIVITY, seed=db.seed + 11),
            cost_per_call=10.0,
            selectivity=JOIN_SELECTIVITY,
        )
    if "adaptliar100" not in functions:
        functions.register(
            "adaptliar100",
            synthetic_boolean(REALIZED_SELECTIVITY, seed=db.seed + 12),
            cost_per_call=100.0,
            selectivity=declared,
        )


def build_adapt_workload(db, key: str) -> AdaptWorkload:
    """Bind scenario ``key`` against ``db``: register functions, compile.

    Returns a copy of the registry entry with :attr:`AdaptWorkload.query`
    populated. Mutates ``db``'s function registry (see
    :func:`ensure_adapt_functions`) — use one database per scenario.
    """
    try:
        scenario = ADAPT_WORKLOADS[key]
    except KeyError:
        raise ArtifactError(
            f"unknown adapt workload {key!r}; "
            f"choose one of {sorted(ADAPT_WORKLOADS)}"
        ) from None
    ensure_adapt_functions(db, scenario.declared)
    query = compile_query(db, ADAPT_SQL, name=key)
    return AdaptWorkload(
        key=scenario.key,
        title=scenario.title,
        declared=scenario.declared,
        expectation=scenario.expectation,
        diagnostic=scenario.diagnostic,
        query=query,
    )
