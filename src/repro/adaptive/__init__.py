"""Mid-query adaptive re-optimization (drift-triggered suffix re-planning).

Keep this package import-light: :mod:`repro.exec.runtime` imports the
controller, so nothing here may import :mod:`repro.exec` (the workload
and bench helpers, which do, live in their own modules and are imported
directly by the CLI).
"""

from repro.adaptive.controller import (
    AdaptiveController,
    AdaptivePolicy,
    AdaptiveReport,
    CorrectedCostModel,
)
from repro.adaptive.inject import (
    InjectedCardinalityStore,
    load_injected_cards,
)

__all__ = [
    "AdaptiveController",
    "AdaptivePolicy",
    "AdaptiveReport",
    "CorrectedCostModel",
    "InjectedCardinalityStore",
    "load_injected_cards",
]
