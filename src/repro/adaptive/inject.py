"""Injected cardinalities: deterministic, precise misestimates on demand.

The jgmp-style harness shape: a JSON document mapping predicate
fingerprints (or function names) to the statistics the catalog *should*
believe — either a selectivity directly or a ``rows``/``input_rows``
cardinality pair, plus an optional per-call cost. The store exposes the
same duck-typed ``observations_for`` surface as
:class:`~repro.obs.feedback.StatsFeedbackStore`, so injection flows
through the one sanctioned statistics mutation path,
:meth:`repro.catalog.catalog.Catalog.apply_feedback` — tests (and the
misestimation bench) force exact catalog lies without ever running a
query first.

Document shape (``--inject-cards FILE``)::

    {
      "schema_version": 1,
      "kind": "injected-cards",
      "cards": {
        "costly100": {"selectivity": 0.1},
        "1f2e3d4c5b6a7988": {"rows": 120, "input_rows": 480,
                             "cost_per_call": 50.0}
      }
    }

Keys are matched against each bound predicate's content fingerprint
(:func:`~repro.obs.feedback.predicate_fingerprint`) first and fall back
to being read as UDF names; ``apply_feedback`` ignores observations
whose function is not registered, so stale cards are inert rather than
fatal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ArtifactError
from repro.obs.feedback import predicate_fingerprint

#: Bump when the injected-cards document shape changes incompatibly.
INJECT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class InjectedObservation:
    """One injected statistic, in ``apply_feedback``'s duck-typed shape.

    ``evaluated`` / ``charged_calls`` act as apply-gates: zero means
    "this field was not injected, leave the catalog alone", mirroring
    how a real :class:`~repro.obs.feedback.PredicateObservation` only
    carries fields it actually observed.
    """

    key: str
    functions: tuple[str, ...]
    evaluated: int
    observed_selectivity: float
    charged_calls: int
    observed_cost_per_call: float


def _card_selectivity(key: str, card: dict) -> tuple[int, float]:
    """(evaluated, selectivity) from a card: direct or rows/input_rows."""
    if "selectivity" in card:
        return max(1, int(card.get("rows", 1))), float(card["selectivity"])
    if "rows" in card:
        input_rows = int(card.get("input_rows", 0))
        if input_rows <= 0:
            raise ArtifactError(
                f"injected card {key!r} gives 'rows' without a positive "
                f"'input_rows' to divide by"
            )
        return input_rows, float(card["rows"]) / input_rows
    return 0, float("nan")


class InjectedCardinalityStore:
    """Fingerprint→statistics cards, bindable to a query's predicates."""

    def __init__(self, cards: dict[str, dict]) -> None:
        self.cards = dict(cards)
        self._observations: list[InjectedObservation] = []
        self.unmatched: list[str] = []
        # Unbound cards resolve as bare function names, so a store is
        # usable without a query (e.g. catalog-wide injection in tests).
        self.bind(())

    @classmethod
    def from_dict(cls, document: dict, source: str = "<dict>") -> (
        "InjectedCardinalityStore"
    ):
        if not isinstance(document, dict):
            raise ArtifactError(
                f"injected cards {source} is not a JSON object"
            )
        version = document.get("schema_version", INJECT_SCHEMA_VERSION)
        if version != INJECT_SCHEMA_VERSION:
            raise ArtifactError(
                f"injected cards {source} has schema_version {version!r}; "
                f"this build reads version {INJECT_SCHEMA_VERSION}"
            )
        cards = document.get("cards")
        if not isinstance(cards, dict) or not cards:
            raise ArtifactError(
                f"injected cards {source} has no non-empty 'cards' object"
            )
        for key, card in cards.items():
            if not isinstance(card, dict):
                raise ArtifactError(
                    f"injected card {key!r} in {source} is not an object"
                )
        return cls(cards)

    @classmethod
    def load(cls, path) -> "InjectedCardinalityStore":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as error:
            raise ArtifactError(
                f"cannot read injected cards {path}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ArtifactError(
                f"injected cards {path} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(document, source=str(path))

    def bind(self, predicates) -> "InjectedCardinalityStore":
        """Resolve card keys against ``predicates``' fingerprints.

        Keys matching no fingerprint are kept as function-name cards
        (and listed in :attr:`unmatched` when they *look* like
        fingerprints — 16 hex digits — so the CLI can warn). Returns
        ``self`` for chaining.
        """
        by_fingerprint = {}
        for predicate in predicates:
            by_fingerprint.setdefault(
                predicate_fingerprint(predicate), predicate
            )
        observations = []
        unmatched = []
        for key in sorted(self.cards):
            card = self.cards[key]
            predicate = by_fingerprint.get(key)
            if predicate is not None:
                functions = tuple(
                    sorted(set(predicate.expr.function_names()))
                )
            else:
                functions = (key,)
                if len(key) == 16 and all(
                    ch in "0123456789abcdef" for ch in key
                ):
                    unmatched.append(key)
            evaluated, selectivity = _card_selectivity(key, card)
            cost = card.get("cost_per_call")
            observations.append(
                InjectedObservation(
                    key=key,
                    functions=functions,
                    evaluated=evaluated,
                    observed_selectivity=selectivity,
                    charged_calls=1 if cost is not None else 0,
                    observed_cost_per_call=(
                        float(cost) if cost is not None else float("nan")
                    ),
                )
            )
        self._observations = observations
        self.unmatched = unmatched
        return self

    def observations_for(
        self, number: int | None = None
    ) -> list[InjectedObservation]:
        """``Catalog.apply_feedback``'s duck-typed surface; the epoch
        number is meaningless for an injection file and ignored."""
        return list(self._observations)


def load_injected_cards(path) -> InjectedCardinalityStore:
    """Read ``--inject-cards FILE`` (convenience wrapper)."""
    return InjectedCardinalityStore.load(Path(path))
