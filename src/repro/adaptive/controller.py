"""Mid-query adaptive re-optimization: drift-triggered suffix re-planning.

The paper's placement strategies rank on *declared* selectivities and
per-call costs; when those statistics lie, the chosen placement can be
arbitrarily bad ("Debunking the Myth of Join Ordering": cardinality
misestimation, not search, is the enemy of plan quality). This module
closes the loop at run time: observe the per-predicate pass rates the
executor is actually seeing, compare them against the declarations with
the shared q-error machinery, and — when drift crosses a threshold —
re-enter the dirty-stream migration planner on the *unexecuted* part of
the query with feedback-corrected statistics, splicing the improved
predicate placement into the live pipeline.

Why splicing mid-query is safe here
-----------------------------------

The row engine is a synchronous pull pipeline: when the spine's leaf
scan produces its next raw row, zero rows are in flight above it (a
nested-loop join exhausts its inner matches before pulling the next
outer row). A *leaf-feed boundary* — immediately after the leaf yields
a raw row, before that row enters any filter — is therefore a safe
suspension point: every earlier row has fully flowed through the old
placement, and the boundary row plus all future rows flow through the
new one. Because :class:`~repro.exec.operators.FilterChain` re-reads
its filter list on every row and
:class:`~repro.exec.operators.IndexNestedLoopJoinOp` aliases its inner
scan's filter list, mutating plan-node filter lists **in place**
(``node.filters[:] = ...``, never rebinding) re-places predicates for
all future rows without rebuilding operators, discarding completed
work, or re-charging anything: each row is evaluated against each
predicate exactly once, at whichever slot held the predicate when the
row passed through.

Pipeline breakers bound the movable region. A spine merge join buffers
*both* inputs and a (potentially Grace) hash join may buffer its outer,
so rows already inside a breaker have passed every filter below it but
none above: moving a predicate across the breaker would double- or
never-evaluate those buffered rows. Predicate moves are therefore
restricted to slots strictly below the lowest breaker on the spine, and
predicates whose current placement sits on an already-materialised
inner scan (nested-loop/merge/hash inners evaluate their filters once,
during materialisation) are frozen.

Everything is wrapped in guardrails — a re-plan budget, placement
hysteresis (an A→B→A oscillation is refused), an estimated-improvement
check, and a migration→pushdown fallback ladder when suffix planning
itself fails — and every trigger, application, and refusal is recorded
as a ``plan.replan`` provenance-ledger event and a flight-recorder
entry, so ``repro why`` and ``repro postmortem`` can replay the story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel
from repro.cost.params import CostParams
from repro.errors import PlanError, ReproError
from repro.expr.predicates import Predicate
from repro.obs.feedback import FeedbackCollector
from repro.obs.provenance import NULL_LEDGER
from repro.obs.quality import DRIFT_QERROR_THRESHOLD, detect_drift
from repro.optimizer.migration import migrate_node
from repro.plan.nodes import JoinMethod, PlanNode, Scan
from repro.plan.streams import Spine, movable_predicates, spine_of

#: Hard cap on retained trigger-log entries (the provenance ledger and
#: flight recorder get every event regardless; this only bounds the
#: in-memory report). Row-path boundaries are power-of-two milestones,
#: so real runs stay far below it.
MAX_TRIGGER_EVENTS = 64

#: Spine join methods that buffer the spine stream: merge sorts both
#: inputs; hash may go Grace and materialise its outer. Treating every
#: hash join as a potential breaker is conservative (the Grace decision
#: is only known at run time) but never unsafe.
_BREAKER_METHODS = (JoinMethod.MERGE, JoinMethod.HASH)


@dataclass(frozen=True)
class AdaptivePolicy:
    """Knobs of the mid-query re-optimization loop."""

    #: q-error of declared vs observed predicate selectivity beyond which
    #: the statistics are considered drifted (`--drift-threshold`).
    drift_threshold: float = DRIFT_QERROR_THRESHOLD
    #: Re-plan budget: at most this many applied re-entries per query
    #: (`--max-replans`).
    max_replans: int = 2
    #: Observations required per predicate before its pass rate is
    #: trusted enough to call drift.
    min_samples: int = 32


@dataclass
class AdaptiveReport:
    """What the adaptive controller did during one execution."""

    enabled: bool = True
    #: ``False`` when the plan shape disqualified adaptivity up front
    #: (e.g. a bushy tree has no spine to re-place along).
    active: bool = True
    disabled_reason: str = ""
    #: Boundary cadence: 0 = power-of-two leaf-row milestones (the row
    #: path), N > 0 = every N leaf rows (the vector-requested cadence).
    cadence: int = 0
    leaf_rows: int = 0
    boundaries: int = 0
    triggers: int = 0
    replans: int = 0
    refusals: int = 0
    converged: int = 0
    #: Bounded trigger log (every entry also went to the ledger/flight
    #: recorder); entries are the ``plan.replan`` event payloads.
    events: list[dict] = field(default_factory=list)

    def note(self, event: dict) -> None:
        if len(self.events) < MAX_TRIGGER_EVENTS:
            self.events.append(event)

    def as_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "active": self.active,
            "disabled_reason": self.disabled_reason,
            "cadence": self.cadence,
            "leaf_rows": self.leaf_rows,
            "boundaries": self.boundaries,
            "triggers": self.triggers,
            "replans": self.replans,
            "refusals": self.refusals,
            "converged": self.converged,
            "events": list(self.events),
        }


class CorrectedCostModel(CostModel):
    """A cost model whose join selectivities defer to run-time
    observations.

    Predicate (filter) selectivities are corrected by temporarily
    setting the shared :class:`Predicate` objects' declared values (the
    migration planner reads them through the model); join-predicate
    selectivities live behind :meth:`CostModel.join_selectivity`'s
    ndistinct heuristic, so the override is injected here, keyed by
    ``pred_id``.
    """

    def __init__(
        self,
        catalog: Catalog,
        params: CostParams,
        caching: bool,
        join_selectivities: dict[int, float] | None = None,
    ) -> None:
        super().__init__(catalog, params, caching=caching)
        self._observed_join_sel = join_selectivities or {}

    def join_selectivity(self, predicate: Predicate) -> float:
        observed = self._observed_join_sel.get(predicate.pred_id)
        if observed is not None:
            return observed
        return super().join_selectivity(predicate)


def placement_signature(
    spine: Spine, movable: list[Predicate], entries: dict[int, int]
) -> tuple[tuple[int, int], ...]:
    """Canonical form of a placement: sorted ``(pred_id, slot)`` pairs.

    The hysteresis guardrail refuses to re-apply any signature this
    query has already realised, which kills A→B→A flapping dead.
    """
    return tuple(
        sorted(
            (predicate.pred_id, _slot_of(spine, predicate, entries))
            for predicate in movable
        )
    )


def _slot_of(spine: Spine, predicate: Predicate, entries: dict[int, int]) -> int:
    """Slot of ``predicate``'s current position in ``spine``'s tree."""
    entry = entries[predicate.pred_id]
    owner = spine.top.find_filter(predicate)
    for spine_join in spine.joins:
        if owner is spine_join.join:
            return spine_join.slot
        if owner is spine_join.join.inner:
            return entry
    return entry


class AdaptiveController:
    """Drift monitor + suffix re-planner for one execution.

    Doubles as the execution's feedback ``collector`` (tee-ing to any
    user-supplied one) and as the runtime ``feed``: operators call
    :meth:`on_leaf_row` at the spine leaf (the safe boundary) and
    :meth:`on_node_row` at spine taps (join fan-out observation). The
    controller never charges the meter and never changes a row — a
    zero-replan adaptive run is charge- and row-identical to a
    non-adaptive one.
    """

    def __init__(
        self,
        root: PlanNode,
        *,
        catalog: Catalog,
        params: CostParams,
        meter,
        caching: bool = False,
        policy: AdaptivePolicy | None = None,
        collector=None,
        ledger=NULL_LEDGER,
        flight=None,
        cadence: int = 0,
        stats_store=None,
        stats_meta: dict | None = None,
    ) -> None:
        self.root = root
        self.catalog = catalog
        self.params = params
        self.meter = meter
        self.caching = caching
        self.policy = policy or AdaptivePolicy()
        self.user_collector = collector
        self.ledger = ledger
        self.flight = flight
        self.cache = None  # installed by the executor once built
        self.stats_store = stats_store
        self.stats_meta = dict(stats_meta or {})
        self.report = AdaptiveReport(cadence=cadence)
        self.cadence = cadence
        self.active = True

        self._feedback = FeedbackCollector()
        self._pred_objects: dict[int, Predicate] = {}
        self._counts: dict[int, int] = {}
        self._leaf_rows = 0
        self._seen_signatures: set[tuple] = set()
        self._reported_drift: set[tuple] = set()
        self._budget_refused = False

        self.leaf_id = -1
        self.tap_ids: frozenset[int] = frozenset()
        try:
            self._spine = spine_of(root)
        except PlanError as error:
            self._disable(f"not-left-deep: {error}")
            return
        self._movable = movable_predicates(self._spine)
        self._entries = {
            predicate.pred_id: self._spine.entry_slot(predicate)
            for predicate in self._movable
        }
        self.leaf_id = id(self._spine.leaf)
        # Taps: every spine node's (post-filter) output, plus each
        # materialised inner, so observed join fan-outs can correct the
        # re-plan cost model.
        taps = {self.leaf_id}
        for spine_join in self._spine.joins:
            taps.add(id(spine_join.join))
            if spine_join.join.method is not JoinMethod.INDEX_NESTED_LOOP:
                taps.add(id(spine_join.join.inner))
        self.tap_ids = frozenset(taps)
        # Inner scans of non-index joins evaluate their filters once,
        # during materialisation — dead placements for live moves.
        self._dead_scan_ids = {
            id(spine_join.join.inner)
            for spine_join in self._spine.joins
            if spine_join.join.method is not JoinMethod.INDEX_NESTED_LOOP
            and isinstance(spine_join.join.inner, Scan)
        }
        breakers = [
            spine_join.slot
            for spine_join in self._spine.joins
            if spine_join.join.method in _BREAKER_METHODS
        ]
        self._breaker_slot = min(breakers) if breakers else math.inf
        if not self._movable:
            self._disable("no movable predicates")
            return
        self._seen_signatures.add(
            placement_signature(self._spine, self._movable, self._entries)
        )

    def _disable(self, reason: str) -> None:
        self.active = False
        self.report.active = False
        self.report.disabled_reason = reason

    # -- feedback-collector surface (tee) ---------------------------------

    def observe(self, predicate: Predicate, passed: bool, charged: float) -> None:
        self._feedback.observe(predicate, passed, charged)
        self._pred_objects.setdefault(predicate.pred_id, predicate)
        if self.user_collector is not None:
            self.user_collector.observe(predicate, passed, charged)

    # -- runtime feed surface ----------------------------------------------

    def on_node_row(self, key: int) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1

    def on_leaf_row(self) -> None:
        self._leaf_rows += 1
        self.report.leaf_rows = self._leaf_rows
        if not self.active:
            return
        rows = self._leaf_rows
        if self.cadence > 0:
            if rows % self.cadence:
                return
        elif rows & (rows - 1):
            return  # power-of-two milestones: O(log n) checks per run
        self.report.boundaries += 1
        self._check_drift()

    # -- drift detection ---------------------------------------------------

    def _observations(self) -> list:
        minimum = self.policy.min_samples
        return [
            observation
            for observation in self._feedback.observations()
            if observation.evaluated >= minimum
        ]

    def _check_drift(self) -> None:
        observations = self._observations()
        if not observations:
            return
        findings = [
            finding
            for finding in detect_drift(
                observations, self.policy.drift_threshold
            )
            if finding.field == "selectivity"
        ]
        if not findings:
            return
        if self.ledger.enabled:
            for finding in findings:
                key = (finding.subject, finding.field, finding.reason)
                if key not in self._reported_drift:
                    self._reported_drift.add(key)
                    self.ledger.record("stats.drift", **finding.as_dict())
        self._trigger(findings, observations)

    # -- the trigger path --------------------------------------------------

    def _event(self, action: str, **data) -> None:
        event = {
            "action": action,
            "leaf_rows": self._leaf_rows,
            "charged": self.meter.charged,
            "replans": self.report.replans,
            **data,
        }
        if action == "applied":
            event["cache_entries"] = (
                self.cache.total_entries() if self.cache is not None else 0
            )
        self.report.note(event)
        if self.ledger.enabled:
            self.ledger.record("plan.replan", **event)
        if self.flight is not None:
            self.flight.record("replan", **event)

    def _trigger(self, findings: list, observations: list) -> None:
        self.report.triggers += 1
        drift = [finding.describe() for finding in findings]
        if self.report.replans >= self.policy.max_replans:
            if not self._budget_refused:
                self._budget_refused = True
                self.report.refusals += 1
                self._event(
                    "refused",
                    reason=f"replan budget exhausted "
                    f"(max_replans={self.policy.max_replans})",
                    drift=drift,
                )
            self._disable("replan budget exhausted")
            return
        proposal = self._propose(observations)
        if proposal is None:
            self.report.refusals += 1
            self._event(
                "refused", reason="suffix planning failed on every rung",
                drift=drift,
            )
            return
        placements, rung = proposal
        safe, frozen = self._safe_moves(placements)
        if not safe:
            self.report.converged += 1
            self._event(
                "converged",
                reason="proposed placement already realised "
                "(or all moves frozen by pipeline breakers)",
                drift=drift,
                frozen=frozen,
            )
            return
        signature = self._signature_after(safe)
        if signature in self._seen_signatures:
            self.report.refusals += 1
            self._event(
                "refused",
                reason="oscillation damped: placement signature "
                "was already realised this query",
                drift=drift,
                moves=self._describe_moves(safe),
            )
            return
        gain = self._estimated_gain(safe, observations)
        if not gain > 0:
            self.report.refusals += 1
            self._event(
                "refused",
                reason="no estimated improvement under corrected stats",
                drift=drift,
                estimated_gain=gain,
                moves=self._describe_moves(safe),
            )
            return
        moves = self._describe_moves(safe)
        self._apply(safe)
        self._seen_signatures.add(signature)
        self.report.replans += 1
        self._event(
            "applied",
            rung=rung,
            drift=drift,
            moves=moves,
            estimated_gain=gain,
            frozen=frozen,
        )
        self._record_epoch()

    # -- suffix re-planning ------------------------------------------------

    def _observed_selectivities(self, observations: list) -> dict[int, float]:
        """``pred_id`` → observed pass rate, for observed live predicates."""
        by_fingerprint = {
            observation.fingerprint: observation
            for observation in observations
        }
        corrected: dict[int, float] = {}
        from repro.obs.feedback import predicate_fingerprint

        for predicate in self._pred_objects.values():
            observation = by_fingerprint.get(predicate_fingerprint(predicate))
            if observation is not None and observation.evaluated > 0:
                value = observation.observed_selectivity
                if 0.0 <= value <= 1.0:
                    corrected[predicate.pred_id] = value
        return corrected

    def _observed_join_selectivities(self) -> dict[int, float]:
        """Join-primary ``pred_id`` → observed pair pass rate, from the
        spine taps (rows out of the join vs outer rows in × inner rows
        materialised)."""
        observed: dict[int, float] = {}
        below: PlanNode = self._spine.leaf
        for spine_join in self._spine.joins:
            join = spine_join.join
            rows_in = self._counts.get(id(below), 0)
            rows_out = self._counts.get(id(join), 0)
            inner_rows = self._counts.get(id(join.inner), 0)
            if (
                rows_in >= self.policy.min_samples
                and rows_out > 0
                and inner_rows > 0
                and join.primary is not None
            ):
                observed[join.primary.pred_id] = min(
                    1.0, rows_out / (rows_in * inner_rows)
                )
            below = join
        return observed

    def _corrected_model(self, observations: list) -> CorrectedCostModel:
        return CorrectedCostModel(
            self.catalog,
            self.params,
            self.caching,
            self._observed_join_selectivities(),
        )

    def _propose(
        self, observations: list
    ) -> tuple[dict[Predicate, int], str] | None:
        """Re-plan the suffix on a clone with corrected stats.

        Returns the proposed slot per movable predicate plus the ladder
        rung that produced it (``migration``, falling back to
        ``pushdown`` when dirty-stream migration itself fails), or
        ``None`` when every rung failed. The clone shares predicate
        objects with the live tree, so declared selectivities are
        snapshot, overwritten with observations, and restored — the
        corrections must never leak into other strategies or runs.
        """
        corrected_sel = self._observed_selectivities(observations)
        snapshot = {
            id(predicate): predicate.selectivity
            for predicate in self._pred_objects.values()
        }
        try:
            for predicate in self._pred_objects.values():
                value = corrected_sel.get(predicate.pred_id)
                if value is not None:
                    predicate.selectivity = value
            clone = self.root.clone()
            model = self._corrected_model(observations)
            model.memo_enable()
            try:
                migrate_node(clone, model)
                rung = "migration"
            except ReproError:
                # Fallback ladder: the pushdown floor (every movable
                # predicate at its entry slot) is always plannable.
                try:
                    clone = self.root.clone()
                    spine = spine_of(clone)
                    spine.apply_placement(
                        {
                            predicate: self._entries[predicate.pred_id]
                            for predicate in self._movable
                        }
                    )
                    rung = "pushdown"
                except ReproError:
                    return None
            clone_spine = spine_of(clone)
            placements = {
                predicate: _slot_of(clone_spine, predicate, self._entries)
                for predicate in self._movable
            }
            return placements, rung
        finally:
            for predicate in self._pred_objects.values():
                predicate.selectivity = snapshot[id(predicate)]

    # -- safety filtering and application ---------------------------------

    def _safe_moves(
        self, placements: dict[Predicate, int]
    ) -> tuple[dict[Predicate, int], int]:
        """Keep only moves whose source and target are live sub-breaker
        locations; returns (safe moves, frozen-move count)."""
        safe: dict[Predicate, int] = {}
        frozen = 0
        for predicate, target in placements.items():
            current = _slot_of(self._spine, predicate, self._entries)
            if target == current:
                continue
            owner = self._spine.top.find_filter(predicate)
            if owner is not None and id(owner) in self._dead_scan_ids:
                frozen += 1  # filters already consumed by materialisation
                continue
            if not (
                current < self._breaker_slot
                and target < self._breaker_slot
            ):
                frozen += 1
                continue
            target_node = self._spine.node_at_slot(predicate, target)
            if id(target_node) in self._dead_scan_ids:
                frozen += 1
                continue
            safe[predicate] = target
        return safe, frozen

    def _signature_after(
        self, safe: dict[Predicate, int]
    ) -> tuple[tuple[int, int], ...]:
        pairs = []
        for predicate in self._movable:
            slot = safe.get(predicate)
            if slot is None:
                slot = _slot_of(self._spine, predicate, self._entries)
            pairs.append((predicate.pred_id, slot))
        return tuple(sorted(pairs))

    def _describe_moves(self, safe: dict[Predicate, int]) -> list[dict]:
        return [
            {
                "predicate": str(predicate),
                "from_slot": _slot_of(self._spine, predicate, self._entries),
                "to_slot": slot,
            }
            for predicate, slot in sorted(
                safe.items(), key=lambda item: str(item[0])
            )
        ]

    def _estimated_gain(
        self, safe: dict[Predicate, int], observations: list
    ) -> float:
        """Estimated cost saved by the safe placement, both sides priced
        under the *corrected* model (prefix work is sunk either way, so
        the whole-plan delta is the suffix delta)."""
        corrected_sel = self._observed_selectivities(observations)
        snapshot = {
            id(predicate): predicate.selectivity
            for predicate in self._pred_objects.values()
        }
        try:
            for predicate in self._pred_objects.values():
                value = corrected_sel.get(predicate.pred_id)
                if value is not None:
                    predicate.selectivity = value
            model = self._corrected_model(observations)
            current_cost = model.estimate_plan(self.root).cost
            clone = self.root.clone()
            spine_of(clone).apply_placement(dict(safe))
            proposed_cost = model.estimate_plan(clone).cost
            return current_cost - proposed_cost
        except ReproError:
            return float("nan")
        finally:
            for predicate in self._pred_objects.values():
                predicate.selectivity = snapshot[id(predicate)]

    def _apply(self, safe: dict[Predicate, int]) -> None:
        """Splice the new placement into the live tree **in place**.

        Mirrors :meth:`Spine.apply_placement`'s remove-then-append (rank
        order) semantics, but slice-assigns each touched node's existing
        filter list — built operators alias those exact list objects, so
        rebinding would silently change nothing.
        """
        moved_ids = {predicate.pred_id for predicate in safe}
        arrivals: dict[int, tuple[PlanNode, list[Predicate]]] = {}
        for predicate, slot in sorted(
            safe.items(), key=lambda item: item[0].rank
        ):
            node = self._spine.node_at_slot(predicate, slot)
            arrivals.setdefault(id(node), (node, []))[1].append(predicate)
        touched: dict[int, PlanNode] = {}
        for node in self._spine.top.walk():
            if any(
                predicate.pred_id in moved_ids for predicate in node.filters
            ):
                touched[id(node)] = node
        for node_id, (node, _preds) in arrivals.items():
            touched[node_id] = node
        for node in touched.values():
            final = [
                predicate
                for predicate in node.filters
                if predicate.pred_id not in moved_ids
            ]
            entry = arrivals.get(id(node))
            if entry is not None:
                final.extend(entry[1])
            node.filters[:] = final

    # -- mid-query feedback epochs ----------------------------------------

    def _record_epoch(self) -> None:
        """Snapshot the observations backing this re-plan into the stats
        store (when wired), as a *mid-query* epoch: same epoch number the
        run's end-of-run epoch will get, sequence = replan ordinal."""
        if self.stats_store is None:
            return
        self.stats_store.record_epoch(
            self._feedback.observations(),
            strategy=self.stats_meta.get("strategy", "adaptive"),
            scale=self.stats_meta.get("scale", 0),
            seed=self.stats_meta.get("seed", 0),
            caching=self.caching,
            sequence=self.report.replans,
        )
